"""Fault-tolerant fetch pipeline: taxonomy, retry policy, degradation.

The paper's best practices assume requests complete; production
streaming does not. Demuxed audio/video doubles the request streams a
session exposes to CDN weather, and a failure mishandled on one medium
breaks pairing conformance on both. This module provides the three
building blocks the simulator's failure/recovery loop is made of:

* :class:`FailureKind` / :class:`ResilienceModel` — a deterministic
  failure **taxonomy** (timeouts, connection resets, HTTP 5xx/404s,
  slow transfers) replacing the single anonymous mid-transfer death of
  the plain :class:`~repro.net.failures.FailureModel`;
* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  per-request attempt caps, a per-session retry *budget*, and
  per-medium request timeouts (timeout expiry is a first-class event in
  the session's closed-form event loop);
* :class:`CircuitBreaker` — the graceful-degradation primitive: a
  repeatedly failing rung is temporarily ejected from the allowed set,
  so retries stop hammering a broken resource while selection stays
  inside the curated combinations (Section 4.2 conformance survives).

Everything is seeded or hashed (``zlib.crc32``, never built-in
``hash``), so identical seeds replay identical failure and retry
schedules across processes.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import TraceError
from ..media.tracks import MediaType
from .failures import FailureModel, RequestFailure


class FailureKind(str, Enum):
    """How a request dies. Each kind surfaces differently in the loop."""

    #: The connection hangs: no payload bytes ever arrive; the failure
    #: surfaces when the per-medium request timeout expires.
    TIMEOUT = "timeout"
    #: The transfer dies mid-flight after a fraction of the bytes — the
    #: classic CDN reset. Partial bytes may be range-resumable.
    CONNECTION_RESET = "connection_reset"
    #: The origin/CDN answers with a 5xx at response time; no payload.
    HTTP_5XX = "http_5xx"
    #: The resource is missing (live segment not yet published, purged
    #: object). No payload; players typically react by switching rungs.
    HTTP_404 = "http_404"
    #: Bytes trickle but the transfer would outlast the watchdog: it is
    #: killed at the request timeout with its partial (resumable) bytes.
    SLOW_TRANSFER = "slow_transfer"


#: Kinds that deliver payload bytes before dying (candidates for
#: HTTP range-resume; the header-level kinds have nothing to keep).
PARTIAL_BYTE_KINDS = frozenset(
    {FailureKind.CONNECTION_RESET, FailureKind.SLOW_TRANSFER}
)

#: Default mix, loosely after CDN error-budget folklore: resets and
#: 5xxs dominate, hangs and trickles are rarer, 404s rarest (VOD).
DEFAULT_FAILURE_MIX: Mapping[FailureKind, float] = {
    FailureKind.CONNECTION_RESET: 0.35,
    FailureKind.HTTP_5XX: 0.25,
    FailureKind.TIMEOUT: 0.15,
    FailureKind.SLOW_TRANSFER: 0.15,
    FailureKind.HTTP_404: 0.10,
}

#: Request timeout applied when no :class:`RetryPolicy` is configured
#: but a timeout-kind failure needs a deadline.
DEFAULT_REQUEST_TIMEOUT_S = 8.0


class ResilienceModel(FailureModel):
    """Seeded failure generator drawing from the full taxonomy.

    A drop-in for :class:`~repro.net.failures.FailureModel`: the session
    only sees :class:`~repro.net.failures.RequestFailure` verdicts, now
    carrying a :class:`FailureKind` and a resumable flag. Four RNG
    values are drawn per request regardless of the verdict, so request
    N's outcome never depends on earlier verdicts' branches and two
    models with the same seed emit identical streams.

    :param failure_probability: chance any single request fails.
    :param seed: RNG seed; requests are numbered in issue order.
    :param mix: relative weights per :class:`FailureKind` (defaults to
        :data:`DEFAULT_FAILURE_MIX`); kinds absent from the mapping
        never occur.
    :param max_fraction: byte-kind failures occur uniformly within the
        first ``max_fraction`` of the transfer.
    :param resume_probability: fraction of byte-kind failures whose
        partial data stays range-resumable (server honoured the range
        header; the connection died cleanly enough to trust the bytes).
    """

    def __init__(
        self,
        failure_probability: float,
        seed: int = 0,
        mix: Optional[Mapping[FailureKind, float]] = None,
        max_fraction: float = 0.9,
        resume_probability: float = 0.6,
    ):
        super().__init__(failure_probability, seed=seed, max_fraction=max_fraction)
        if not 0.0 <= resume_probability <= 1.0:
            raise TraceError(
                f"resume probability must be in [0,1], got {resume_probability}"
            )
        mix = dict(DEFAULT_FAILURE_MIX if mix is None else mix)
        if not mix:
            raise TraceError("failure mix must name at least one kind")
        for kind, weight in mix.items():
            if not isinstance(kind, FailureKind):
                raise TraceError(f"unknown failure kind {kind!r}")
            if weight < 0:
                raise TraceError(f"mix weight must be non-negative, got {weight}")
        total = sum(mix.values())
        if total <= 0:
            raise TraceError("failure mix weights must sum to a positive value")
        self.resume_probability = resume_probability
        self._mix = tuple((kind, weight / total) for kind, weight in mix.items())

    def _pick_kind(self, u: float) -> FailureKind:
        acc = 0.0
        for kind, weight in self._mix:
            acc += weight
            if u < acc:
                return kind
        return self._mix[-1][0]

    def next_request(self) -> Optional[RequestFailure]:
        if self.failure_probability <= 0.0:
            return None
        p = self._rng.random()
        kind_u = self._rng.random()
        fraction_u = self._rng.random()
        resume_u = self._rng.random()
        if p >= self.failure_probability:
            return None
        kind = self._pick_kind(kind_u)
        if kind in PARTIAL_BYTE_KINDS:
            fraction = fraction_u * self.max_fraction
            resumable = resume_u < self.resume_probability
        else:
            fraction = 0.0
            resumable = False
        return RequestFailure(fraction=fraction, kind=kind, resumable=resumable)


@dataclass(frozen=True)
class RetryPolicy:
    """Closed-form retry behaviour for failed chunk requests.

    Delays follow truncated exponential backoff with deterministic
    jitter: the *nominal* delay for attempt ``n`` (the ``n``-th try of
    one chunk, so the first retry is attempt 2) is
    ``min(base * factor**(n-2), max_delay)`` — non-decreasing up to the
    cap — and the dispatched delay adds up to ``jitter`` of itself,
    derived from a crc32 hash of (seed, medium, chunk, attempt) so a
    given scenario replays identically while concurrent sessions
    decorrelate.

    :param max_attempts: tries per chunk request, including the first.
    :param base_delay_s: nominal delay before the first retry.
    :param backoff_factor: multiplicative growth per further retry.
    :param max_delay_s: nominal-delay cap.
    :param jitter: jitter amplitude as a fraction of the nominal delay.
    :param jitter_seed: seeds the deterministic jitter hash.
    :param retry_budget: total retries the whole session may spend;
        exhausting it ends the session gracefully (degraded, not an
        exception).
    :param request_timeout_s: watchdog deadline per request; timeout
        and slow-transfer failures surface when it expires.
    :param video_timeout_s: per-medium override of the watchdog.
    :param audio_timeout_s: per-medium override of the watchdog.
    :param emergency_budget_fraction: when the remaining retry budget
        falls to this fraction (or below), cooperating players drop to
        the lowest allowed rung to stop spending bytes on gambles.
    :param live_skip: in live sessions, skip a chunk whose attempts are
        exhausted (preserving liveness) instead of ending the session.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.4
    backoff_factor: float = 2.0
    max_delay_s: float = 8.0
    jitter: float = 0.25
    jitter_seed: int = 0
    retry_budget: int = 64
    request_timeout_s: float = 8.0
    video_timeout_s: Optional[float] = None
    audio_timeout_s: Optional[float] = None
    emergency_budget_fraction: float = 0.125
    live_skip: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TraceError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise TraceError(f"base delay must be >= 0, got {self.base_delay_s}")
        if self.backoff_factor < 1.0:
            raise TraceError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise TraceError(
                f"max delay {self.max_delay_s} below base delay {self.base_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise TraceError(f"jitter must be in [0,1], got {self.jitter}")
        if self.retry_budget < 0:
            raise TraceError(f"retry budget must be >= 0, got {self.retry_budget}")
        for name in ("request_timeout_s", "video_timeout_s", "audio_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise TraceError(f"{name} must be positive, got {value}")
        if not 0.0 <= self.emergency_budget_fraction <= 1.0:
            raise TraceError(
                "emergency_budget_fraction must be in [0,1], got "
                f"{self.emergency_budget_fraction}"
            )

    def timeout_for(self, medium: MediaType) -> float:
        if medium is MediaType.VIDEO and self.video_timeout_s is not None:
            return self.video_timeout_s
        if medium is MediaType.AUDIO and self.audio_timeout_s is not None:
            return self.audio_timeout_s
        return self.request_timeout_s

    def nominal_delay_s(self, attempt: int) -> float:
        """Jitter-free backoff delay before dispatching ``attempt``.

        ``attempt`` counts tries of one chunk request, so the first
        value with a delay is attempt 2 (the first retry). The sequence
        is non-decreasing and saturates at ``max_delay_s``.
        """
        if attempt <= 1:
            return 0.0
        nominal = self.base_delay_s * self.backoff_factor ** (attempt - 2)
        return min(nominal, self.max_delay_s)

    def delay_s(self, attempt: int, medium: MediaType, chunk_index: int) -> float:
        """Dispatched delay: nominal plus deterministic jitter."""
        nominal = self.nominal_delay_s(attempt)
        if nominal <= 0 or self.jitter <= 0:
            return nominal
        key = f"{self.jitter_seed}:{medium.value}:{chunk_index}:{attempt}"
        u = zlib.crc32(key.encode("utf-8")) / 2**32
        return nominal * (1.0 + self.jitter * u)

    def emergency_threshold(self) -> int:
        """Remaining-budget level at which emergency fallback engages."""
        return max(1, int(self.retry_budget * self.emergency_budget_fraction))


@dataclass(frozen=True)
class FailoverPolicy:
    """How a session walks its ordered endpoint list when edges fail.

    Kept separate from :class:`RetryPolicy` on purpose: retry policies
    participate in every :class:`~repro.runner.jobs.SimulationJob` cache
    key, and growing them would invalidate every cached single-session
    cell for a knob only topology runs read.

    :param failover_budget: endpoint switches one session may spend;
        once exhausted the session stays on its current endpoint and
        spends its remaining retry budget there (degrading gracefully
        rather than oscillating forever across a dead neighborhood).
    :param endpoint_threshold: consecutive failures on one endpoint
        before its circuit opens and the session fails over.
    :param endpoint_cooldown_s: how long an opened endpoint circuit
        stays open before the endpoint is eligible again.
    """

    failover_budget: int = 8
    endpoint_threshold: int = 2
    endpoint_cooldown_s: float = 15.0

    def __post_init__(self) -> None:
        if self.failover_budget < 0:
            raise TraceError(
                f"failover budget must be >= 0, got {self.failover_budget}"
            )
        if self.endpoint_threshold < 1:
            raise TraceError(
                f"endpoint threshold must be >= 1, got {self.endpoint_threshold}"
            )
        if self.endpoint_cooldown_s <= 0:
            raise TraceError(
                f"endpoint cooldown must be positive, got "
                f"{self.endpoint_cooldown_s}"
            )


class EndpointHealth:
    """Per-session health view over an ordered endpoint list.

    Wraps a :class:`CircuitBreaker` keyed by endpoint id: consecutive
    failures open an endpoint's circuit and :meth:`current` advances to
    the next closed endpoint in ring order, charging one unit of the
    :class:`FailoverPolicy` budget per switch. Mirroring the player's
    rung-ejection guard, there is always a serving endpoint — when every
    circuit is open (or the budget is spent) the session stays where it
    is rather than being left with nothing, and the retry budget decides
    when to give up.
    """

    def __init__(self, endpoints: Sequence[str], policy: FailoverPolicy):
        if not endpoints:
            raise TraceError("endpoint list must not be empty")
        if len(set(endpoints)) != len(tuple(endpoints)):
            raise TraceError(f"duplicate endpoint ids in {tuple(endpoints)!r}")
        self.endpoints = tuple(endpoints)
        self.policy = policy
        self._breaker = CircuitBreaker(
            threshold=policy.endpoint_threshold,
            cooldown_s=policy.endpoint_cooldown_s,
        )
        self._active = 0
        #: Endpoint switches performed, capped by the failover budget.
        self.failovers = 0
        #: (time, from, to) of each switch — bounded by the budget.
        self.hops: List[Tuple[float, str, str]] = []

    @property
    def active(self) -> str:
        return self.endpoints[self._active]

    def current(self, now: float) -> str:
        """The endpoint to use at ``now``, failing over if needed.

        Advances in ring order past circuit-open endpoints while budget
        remains; never returns nothing — with every circuit open or the
        budget exhausted, the currently active endpoint is the last
        resort.
        """
        n = len(self.endpoints)
        while (
            self.failovers < self.policy.failover_budget
            and self._breaker.is_open(self.endpoints[self._active], now)
        ):
            for step in range(1, n):
                candidate = (self._active + step) % n
                if not self._breaker.is_open(self.endpoints[candidate], now):
                    self.failovers += 1
                    self.hops.append(
                        (now, self.endpoints[self._active], self.endpoints[candidate])
                    )
                    self._active = candidate
                    break
            else:
                return self.endpoints[self._active]  # every circuit open
        return self.endpoints[self._active]

    def record_failure(self, endpoint: str, now: float) -> bool:
        """Count a failure against ``endpoint``; True when it trips."""
        return self._breaker.record_failure(endpoint, now)

    def record_success(self, endpoint: str) -> None:
        self._breaker.record_success(endpoint)

    def open_endpoints(self, now: float) -> Set[str]:
        return self._breaker.open_keys(now)


@dataclass
class CircuitBreaker:
    """Per-key consecutive-failure breaker with a cooldown.

    Keys are whatever granularity the caller degrades at — the players
    use track ids, so a rung that keeps 404ing or resetting is ejected
    from selection for ``cooldown_s`` while its siblings keep serving.
    A success closes the circuit immediately.
    """

    threshold: int = 3
    cooldown_s: float = 20.0
    _consecutive: Dict[str, int] = field(default_factory=dict)
    _open_until: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise TraceError(f"threshold must be >= 1, got {self.threshold}")
        if self.cooldown_s <= 0:
            raise TraceError(f"cooldown must be positive, got {self.cooldown_s}")

    def record_failure(self, key: str, now: float, weight: int = 1) -> bool:
        """Count a failure; returns True when this trips the breaker."""
        count = self._consecutive.get(key, 0) + weight
        self._consecutive[key] = count
        if count >= self.threshold:
            self._open_until[key] = now + self.cooldown_s
            self._consecutive[key] = 0
            return True
        return False

    def record_success(self, key: str) -> None:
        self._consecutive.pop(key, None)
        self._open_until.pop(key, None)

    def is_open(self, key: str, now: float) -> bool:
        until = self._open_until.get(key)
        if until is None:
            return False
        if now >= until:
            del self._open_until[key]
            return False
        return True

    def open_keys(self, now: float) -> Set[str]:
        return {key for key in tuple(self._open_until) if self.is_open(key, now)}

    def reset(self) -> None:
        self._consecutive.clear()
        self._open_until.clear()
