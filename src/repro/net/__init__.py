"""Network substrate: bandwidth traces, path models, origin/CDN."""

from .failures import FailureModel, NoFailures, RequestFailure
from .link import NetworkModel, SeparatePaths, SharedBottleneck, shared
from .resilience import (
    DEFAULT_FAILURE_MIX,
    CircuitBreaker,
    EndpointHealth,
    FailoverPolicy,
    FailureKind,
    ResilienceModel,
    RetryPolicy,
)
from .mahimahi import load_mahimahi, save_mahimahi, trace_from_timestamps
from .markov import MarkovState, hspa_preset, lte_preset, markov_trace
from .server import CdnCache, ChunkKey, OriginServer, TransferStats
from .traces import (
    BandwidthTrace,
    TraceSegment,
    constant,
    from_csv,
    from_pairs,
    load_trace,
    random_walk,
    save_trace,
    square_wave,
)

__all__ = [
    "BandwidthTrace",
    "CdnCache",
    "ChunkKey",
    "CircuitBreaker",
    "DEFAULT_FAILURE_MIX",
    "EndpointHealth",
    "FailoverPolicy",
    "FailureKind",
    "FailureModel",
    "ResilienceModel",
    "RetryPolicy",
    "MarkovState",
    "NoFailures",
    "RequestFailure",
    "hspa_preset",
    "load_mahimahi",
    "lte_preset",
    "markov_trace",
    "save_mahimahi",
    "trace_from_timestamps",
    "NetworkModel",
    "OriginServer",
    "SeparatePaths",
    "SharedBottleneck",
    "TraceSegment",
    "TransferStats",
    "constant",
    "from_csv",
    "from_pairs",
    "load_trace",
    "random_walk",
    "save_trace",
    "shared",
    "square_wave",
]
