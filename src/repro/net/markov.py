"""Markov-modulated bandwidth traces.

Cellular links (the environment the paper's Dolby-Atmos-on-mobile
motivation lives in) are well approximated by a Markov chain over a few
rate states. :func:`markov_trace` generates deterministic, seeded
piecewise-constant traces from a state model, and two presets model
typical 3G/LTE envelopes. These feed the sweep experiments and give the
library realistic non-square profiles without external trace files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import TraceError
from .traces import BandwidthTrace, from_pairs


@dataclass(frozen=True)
class MarkovState:
    """One rate state of the chain."""

    kbps: float
    mean_holding_s: float

    def __post_init__(self) -> None:
        if self.kbps < 0:
            raise TraceError(f"state rate must be non-negative, got {self.kbps}")
        if self.mean_holding_s <= 0:
            raise TraceError(
                f"mean holding time must be positive, got {self.mean_holding_s}"
            )


def markov_trace(
    states: Sequence[MarkovState],
    transition: Sequence[Sequence[float]],
    duration_s: float,
    seed: int,
    jitter: float = 0.1,
) -> BandwidthTrace:
    """Generate a trace by walking the chain for ``duration_s`` seconds.

    :param transition: row-stochastic matrix; ``transition[i][j]`` is the
        probability of moving to state *j* when state *i*'s holding time
        expires. Self-transitions are allowed (they extend the stay).
    :param jitter: multiplicative uniform jitter (+-fraction) applied to
        each visit's rate, so repeated visits to one state do not produce
        byte-identical plateaus.
    """
    if not states:
        raise TraceError("need at least one state")
    if len(transition) != len(states) or any(
        len(row) != len(states) for row in transition
    ):
        raise TraceError("transition matrix shape must be n_states x n_states")
    for i, row in enumerate(transition):
        if any(p < 0 for p in row):
            raise TraceError(f"negative probability in row {i}")
        if abs(sum(row) - 1.0) > 1e-9:
            raise TraceError(f"row {i} sums to {sum(row)}, expected 1")
    if duration_s <= 0:
        raise TraceError(f"duration must be positive, got {duration_s}")
    if not 0 <= jitter < 1:
        raise TraceError(f"jitter must be in [0, 1), got {jitter}")

    rng = random.Random(seed)
    state_index = 0
    elapsed = 0.0
    pairs: List[tuple] = []
    while elapsed < duration_s:
        state = states[state_index]
        holding = rng.expovariate(1.0 / state.mean_holding_s)
        holding = min(max(holding, 0.25), duration_s - elapsed)
        rate = state.kbps * (1.0 + jitter * (2.0 * rng.random() - 1.0))
        pairs.append((holding, max(rate, 0.0)))
        elapsed += holding
        state_index = rng.choices(
            range(len(states)), weights=transition[state_index]
        )[0]
    return from_pairs(pairs)


def lte_preset(duration_s: float = 300.0, seed: int = 1) -> BandwidthTrace:
    """An LTE-like profile: mostly good, occasional deep fades."""
    states = [
        MarkovState(kbps=6000, mean_holding_s=20.0),
        MarkovState(kbps=2500, mean_holding_s=12.0),
        MarkovState(kbps=600, mean_holding_s=6.0),
    ]
    transition = [
        [0.6, 0.35, 0.05],
        [0.4, 0.4, 0.2],
        [0.3, 0.5, 0.2],
    ]
    return markov_trace(states, transition, duration_s, seed)


def hspa_preset(duration_s: float = 300.0, seed: int = 1) -> BandwidthTrace:
    """A 3G/HSPA-like profile: tight rates where audio choice matters."""
    states = [
        MarkovState(kbps=1400, mean_holding_s=15.0),
        MarkovState(kbps=700, mean_holding_s=10.0),
        MarkovState(kbps=250, mean_holding_s=8.0),
    ]
    transition = [
        [0.5, 0.4, 0.1],
        [0.35, 0.4, 0.25],
        [0.2, 0.5, 0.3],
    ]
    return markov_trace(states, transition, duration_s, seed)
