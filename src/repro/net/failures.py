"""Transient request-failure injection.

Real CDNs time out, reset connections and serve 5xxs; a player's
QoE story is incomplete without them. A :class:`FailureModel` decides,
per request, whether (and after what fraction of the transfer) the
request dies. With the plain model the simulator discards the partial
data, frees the slot and asks the player again, so a failure is also an
adaptation opportunity (players commonly re-request one rung lower).
The richer :class:`~repro.net.resilience.ResilienceModel` draws from a
full failure taxonomy and marks failures range-resumable.

Deterministic: failures are drawn from a seeded RNG keyed by request
ordinals, so a given scenario replays identically. :meth:`reset`
rewinds the verdict stream, so one model instance can be reused across
the multi-seed loops of an experiment without leaking state between
sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .resilience import FailureKind


@dataclass(frozen=True)
class RequestFailure:
    """Verdict for one request: fail after ``fraction`` of its bytes.

    ``kind`` classifies the failure (``None`` means the legacy anonymous
    mid-transfer death, treated as a connection reset); ``resumable``
    marks failures whose partial bytes an HTTP range request could pick
    up again instead of re-fetching from byte zero.
    """

    fraction: float  # in [0, 1): how much of the chunk arrives first
    kind: Optional["FailureKind"] = None
    resumable: bool = False


class FailureModel:
    """Seeded per-request failure generator.

    :param failure_probability: chance any single request fails.
    :param seed: RNG seed; requests are numbered in issue order.
    :param max_fraction: failures occur uniformly within the first
        ``max_fraction`` of the transfer (a connection reset mid-chunk).
    """

    def __init__(
        self,
        failure_probability: float,
        seed: int = 0,
        max_fraction: float = 0.9,
    ):
        if not 0.0 <= failure_probability <= 1.0:
            raise TraceError(
                f"failure probability must be in [0,1], got {failure_probability}"
            )
        if not 0.0 < max_fraction <= 1.0:
            raise TraceError(f"max_fraction must be in (0,1], got {max_fraction}")
        self.failure_probability = failure_probability
        self.max_fraction = max_fraction
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the verdict stream to the first request.

        Call between sessions when reusing one model instance, so each
        session replays the identical seeded schedule instead of
        silently continuing where the previous session left off.
        """
        self._rng = random.Random(self._seed)

    def next_request(self) -> Optional[RequestFailure]:
        """Verdict for the next request (``None`` = it succeeds)."""
        # Null-object contract: a model that can never fail draws no RNG
        # values, so FailureModel(0.0) and NoFailures produce the same
        # (empty) verdict stream and identical RNG state — one cannot be
        # swapped for the other mid-run with different side effects.
        if self.failure_probability <= 0.0:
            return None
        # Draw both values unconditionally so the stream of outcomes for
        # request N does not depend on earlier verdicts' branches.
        p = self._rng.random()
        fraction = self._rng.random() * self.max_fraction
        if p < self.failure_probability:
            return RequestFailure(fraction=fraction)
        return None


class NoFailures(FailureModel):
    """The default: requests always succeed (a true null object)."""

    def __init__(self):
        super().__init__(failure_probability=0.0)

    def next_request(self) -> Optional[RequestFailure]:
        return None
