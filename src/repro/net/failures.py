"""Transient request-failure injection.

Real CDNs time out, reset connections and serve 5xxs; a player's
QoE story is incomplete without them. A :class:`FailureModel` decides,
per request, whether (and after what fraction of the transfer) the
request dies. The simulator discards the partial data — HTTP
range-resume is deliberately not assumed — frees the slot and asks the
player again, so a failure is also an adaptation opportunity (players
commonly re-request one rung lower).

Deterministic: failures are drawn from a seeded RNG keyed by request
ordinals, so a given scenario replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import TraceError


@dataclass(frozen=True)
class RequestFailure:
    """Verdict for one request: fail after ``fraction`` of its bytes."""

    fraction: float  # in [0, 1): how much of the chunk arrives first


class FailureModel:
    """Seeded per-request failure generator.

    :param failure_probability: chance any single request fails.
    :param seed: RNG seed; requests are numbered in issue order.
    :param max_fraction: failures occur uniformly within the first
        ``max_fraction`` of the transfer (a connection reset mid-chunk).
    """

    def __init__(
        self,
        failure_probability: float,
        seed: int = 0,
        max_fraction: float = 0.9,
    ):
        if not 0.0 <= failure_probability <= 1.0:
            raise TraceError(
                f"failure probability must be in [0,1], got {failure_probability}"
            )
        if not 0.0 < max_fraction <= 1.0:
            raise TraceError(f"max_fraction must be in (0,1], got {max_fraction}")
        self.failure_probability = failure_probability
        self.max_fraction = max_fraction
        self._rng = random.Random(seed)

    def next_request(self) -> Optional[RequestFailure]:
        """Verdict for the next request (``None`` = it succeeds)."""
        # Draw both values unconditionally so the stream of outcomes for
        # request N does not depend on earlier verdicts' branches.
        p = self._rng.random()
        fraction = self._rng.random() * self.max_fraction
        if p < self.failure_probability:
            return RequestFailure(fraction=fraction)
        return None


class NoFailures(FailureModel):
    """The default: requests always succeed."""

    def __init__(self):
        super().__init__(failure_probability=0.0)

    def next_request(self) -> Optional[RequestFailure]:
        return None
