"""Mahimahi packet-delivery trace import.

Mahimahi's ``mm-link`` traces — the de-facto interchange format of ABR
research (Pensieve, Oboe, Fugu all ship them) — are plain text files
with one integer per line: a millisecond timestamp at which one MTU
(1500-byte) packet delivery opportunity occurs. :func:`load_mahimahi`
converts such a file into a piecewise-constant
:class:`~repro.net.traces.BandwidthTrace` by bucketing deliveries into
fixed windows, so recorded cellular traces can drive the simulator
directly.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import TraceError
from .traces import BandwidthTrace, from_pairs

#: Bits per delivery opportunity: one 1500-byte MTU packet.
BITS_PER_PACKET = 1500 * 8


def trace_from_timestamps(
    timestamps_ms: Sequence[int],
    window_s: float = 1.0,
    loop: bool = True,
) -> BandwidthTrace:
    """Convert delivery timestamps (ms) into a bandwidth trace.

    Deliveries are bucketed into ``window_s`` windows; each window's
    rate is ``deliveries * 12000 bits / window``. Windows with no
    deliveries become 0 kbps segments (a genuine cellular outage).
    """
    if window_s <= 0:
        raise TraceError(f"window must be positive, got {window_s}")
    if not timestamps_ms:
        raise TraceError("trace has no delivery opportunities")
    ordered = sorted(timestamps_ms)
    if ordered[0] < 0:
        raise TraceError(f"negative timestamp {ordered[0]}")
    window_ms = window_s * 1000.0
    n_windows = int(ordered[-1] // window_ms) + 1
    counts = [0] * n_windows
    for ts in ordered:
        counts[int(ts // window_ms)] += 1
    pairs = [
        (window_s, count * BITS_PER_PACKET / window_s / 1000.0) for count in counts
    ]
    return from_pairs(pairs, loop=loop)


def load_mahimahi(path: str, window_s: float = 1.0, loop: bool = True) -> BandwidthTrace:
    """Load a mahimahi ``mm-link`` trace file."""
    timestamps: List[int] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                timestamps.append(int(line))
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{lineno}: expected an integer millisecond "
                    f"timestamp, got {line!r}"
                ) from exc
    return trace_from_timestamps(timestamps, window_s=window_s, loop=loop)


def save_mahimahi(trace: BandwidthTrace, path: str, duration_s: float = 0.0) -> None:
    """Export a trace as mahimahi delivery timestamps.

    The inverse of :func:`load_mahimahi` up to packet quantization:
    each segment emits evenly spaced deliveries at its rate.
    """
    total_s = duration_s or trace.period_s
    timestamps: List[int] = []
    t = 0.0
    credit_bits = 0.0
    while t < total_s:
        horizon = min(trace.next_change_after(t), total_s)
        rate_bps = trace.bandwidth_at(t) * 1000.0
        span = horizon - t
        credit_bits += rate_bps * span
        n_packets = int(credit_bits // BITS_PER_PACKET)
        if n_packets > 0 and rate_bps > 0:
            spacing = span / n_packets
            for i in range(n_packets):
                timestamps.append(int(round((t + i * spacing) * 1000.0)))
            credit_bits -= n_packets * BITS_PER_PACKET
        t = horizon
    with open(path, "w", encoding="utf-8") as f:
        for ts in sorted(timestamps):
            f.write(f"{ts}\n")
