"""Network path models: how concurrent downloads share capacity.

The paper's client fetches audio and video "over a shared network
bottleneck link" in the default setup, but Section 1 notes the demuxed
tracks "may be located at different servers and hence may not
necessarily share the same bottleneck link." Both topologies are
modelled:

* :class:`SharedBottleneck` — one shaped link; concurrent downloads
  split the capacity max-min fairly (equal shares, since no flow is
  otherwise limited). This equal split is what halves Shaka's per-stream
  throughput samples in Fig. 4.
* :class:`SeparatePaths` — audio and video ride independent links, each
  with its own trace.

Both expose the same interface: given the set of active downloads (each
tagged with its medium) and a time, return each download's current rate
and the time at which any rate may next change.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Tuple

from ..errors import LinkConfigError
from ..media.tracks import MediaType
from .traces import BandwidthTrace, TraceCursor


class NetworkModel:
    """Interface for path models used by the simulator."""

    #: Dead time at the start of every request (HTTP request RTT). Rates
    #: are zero during this window, which realistically yields empty
    #: leading sample intervals for interval-based estimators.
    rtt_s: float = 0.0

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        """Per-download rate in kbps at time ``t``."""
        raise NotImplementedError

    def media_rates(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float]:
        """Kernel fast path: ``(video_kbps, audio_kbps)`` at time ``t``.

        The session runs at most one download per medium, so the
        general :meth:`rates` mapping collapses to a pair of floats.
        This default delegates to :meth:`rates` — custom network models
        keep working unchanged and produce bit-identical values — while
        the built-in models override it to skip the per-event dict
        traffic. An inactive medium's rate is 0.0.
        """
        live: Dict[Hashable, MediaType] = {}
        if video_active:
            live[MediaType.VIDEO] = MediaType.VIDEO
        if audio_active:
            live[MediaType.AUDIO] = MediaType.AUDIO
        rates = self.rates(live, t) if live else {}
        return (
            rates.get(MediaType.VIDEO, 0.0),
            rates.get(MediaType.AUDIO, 0.0),
        )

    def next_change_after(self, t: float) -> float:
        """Next absolute time any underlying trace changes rate."""
        raise NotImplementedError

    def media_step(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float, float]:
        """``(video_kbps, audio_kbps, next_change_after(t))`` at ``t``.

        One call per simulation event instead of two. The default
        composes :meth:`media_rates` and :meth:`next_change_after`, so
        custom network models see exactly the calls the kernel used to
        make; the built-in models override it to resolve both answers
        from a single trace lookup.
        """
        v_rate, a_rate = self.media_rates(video_active, audio_active, t)
        return v_rate, a_rate, self.next_change_after(t)


class SharedBottleneck(NetworkModel):
    """A single shaped link shared by all active downloads.

    The model holds its own :class:`~repro.net.traces.TraceCursor`
    over the (immutable, shareable) trace: many models — one per
    session of a population sweep — can be built over one trace object
    without their memoized fast paths interfering.
    """

    def __init__(self, trace: BandwidthTrace, rtt_s: float = 0.0):
        if rtt_s < 0:
            raise LinkConfigError(f"rtt must be non-negative, got {rtt_s}")
        self.trace = trace
        self._cursor = trace.cursor()
        self.rtt_s = rtt_s

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        if not active:
            return {}
        share = self._cursor.bandwidth_at(t) / len(active)
        return {key: share for key in active}

    # hot
    def media_rates(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float]:
        # Same arithmetic as rates(): full bandwidth over the number of
        # active flows, so concurrent A+V each get an equal share.
        if video_active:
            if audio_active:
                share = self._cursor.bandwidth_at(t) / 2
                return share, share
            return self._cursor.bandwidth_at(t), 0.0
        if audio_active:
            return 0.0, self._cursor.bandwidth_at(t)
        return 0.0, 0.0

    def next_change_after(self, t: float) -> float:
        return self._cursor.next_change_after(t)

    # hot
    def media_step(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float, float]:
        kbps, change = self._cursor.rate_and_next_change(t)
        if video_active:
            if audio_active:
                share = kbps / 2
                return share, share, change
            return kbps, 0.0, change
        if audio_active:
            return 0.0, kbps, change
        return 0.0, 0.0, change


class SeparatePaths(NetworkModel):
    """Independent audio and video paths (tracks on different servers)."""

    def __init__(
        self,
        video_trace: BandwidthTrace,
        audio_trace: BandwidthTrace,
        rtt_s: float = 0.0,
    ):
        if rtt_s < 0:
            raise LinkConfigError(f"rtt must be non-negative, got {rtt_s}")
        self.video_trace = video_trace
        self.audio_trace = audio_trace
        self._video_cursor = video_trace.cursor()
        self._audio_cursor = audio_trace.cursor()
        self.rtt_s = rtt_s

    def _cursor_for(self, medium: MediaType) -> "TraceCursor":
        if medium is MediaType.VIDEO:
            return self._video_cursor
        return self._audio_cursor

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        # Each path is shared only by downloads of its own medium; the
        # simulator runs at most one download per medium, so each gets
        # the full path rate — but the general split is kept for safety.
        by_medium: Dict[MediaType, int] = {}
        for medium in active.values():
            by_medium[medium] = by_medium.get(medium, 0) + 1
        out: Dict[Hashable, float] = {}
        for key, medium in active.items():
            rate = self._cursor_for(medium).bandwidth_at(t)
            out[key] = rate / by_medium[medium]
        return out

    # hot
    def media_rates(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float]:
        # One download per medium on its own path: each active medium
        # gets its full path rate (the general split divides by 1).
        return (
            self._video_cursor.bandwidth_at(t) if video_active else 0.0,
            self._audio_cursor.bandwidth_at(t) if audio_active else 0.0,
        )

    def next_change_after(self, t: float) -> float:
        return min(
            self._video_cursor.next_change_after(t),
            self._audio_cursor.next_change_after(t),
        )

    # hot
    def media_step(
        self, video_active: bool, audio_active: bool, t: float
    ) -> Tuple[float, float, float]:
        v_kbps, v_change = self._video_cursor.rate_and_next_change(t)
        a_kbps, a_change = self._audio_cursor.rate_and_next_change(t)
        return (
            v_kbps if video_active else 0.0,
            a_kbps if audio_active else 0.0,
            a_change if a_change < v_change else v_change,
        )


def shared(trace: BandwidthTrace, rtt_s: float = 0.0) -> SharedBottleneck:
    """Shorthand used throughout the experiments."""
    return SharedBottleneck(trace, rtt_s=rtt_s)
