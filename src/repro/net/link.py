"""Network path models: how concurrent downloads share capacity.

The paper's client fetches audio and video "over a shared network
bottleneck link" in the default setup, but Section 1 notes the demuxed
tracks "may be located at different servers and hence may not
necessarily share the same bottleneck link." Both topologies are
modelled:

* :class:`SharedBottleneck` — one shaped link; concurrent downloads
  split the capacity max-min fairly (equal shares, since no flow is
  otherwise limited). This equal split is what halves Shaka's per-stream
  throughput samples in Fig. 4.
* :class:`SeparatePaths` — audio and video ride independent links, each
  with its own trace.

Both expose the same interface: given the set of active downloads (each
tagged with its medium) and a time, return each download's current rate
and the time at which any rate may next change.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Tuple

from ..errors import TraceError
from ..media.tracks import MediaType
from .traces import BandwidthTrace


class NetworkModel:
    """Interface for path models used by the simulator."""

    #: Dead time at the start of every request (HTTP request RTT). Rates
    #: are zero during this window, which realistically yields empty
    #: leading sample intervals for interval-based estimators.
    rtt_s: float = 0.0

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        """Per-download rate in kbps at time ``t``."""
        raise NotImplementedError

    def next_change_after(self, t: float) -> float:
        """Next absolute time any underlying trace changes rate."""
        raise NotImplementedError


class SharedBottleneck(NetworkModel):
    """A single shaped link shared by all active downloads."""

    def __init__(self, trace: BandwidthTrace, rtt_s: float = 0.0):
        if rtt_s < 0:
            raise TraceError(f"rtt must be non-negative, got {rtt_s}")
        self.trace = trace
        self.rtt_s = rtt_s

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        if not active:
            return {}
        share = self.trace.bandwidth_at(t) / len(active)
        return {key: share for key in active}

    def next_change_after(self, t: float) -> float:
        return self.trace.next_change_after(t)


class SeparatePaths(NetworkModel):
    """Independent audio and video paths (tracks on different servers)."""

    def __init__(
        self,
        video_trace: BandwidthTrace,
        audio_trace: BandwidthTrace,
        rtt_s: float = 0.0,
    ):
        if rtt_s < 0:
            raise TraceError(f"rtt must be non-negative, got {rtt_s}")
        self.video_trace = video_trace
        self.audio_trace = audio_trace
        self.rtt_s = rtt_s

    def _trace_for(self, medium: MediaType) -> BandwidthTrace:
        return self.video_trace if medium is MediaType.VIDEO else self.audio_trace

    def rates(
        self, active: Mapping[Hashable, MediaType], t: float
    ) -> Dict[Hashable, float]:
        # Each path is shared only by downloads of its own medium; the
        # simulator runs at most one download per medium, so each gets
        # the full path rate — but the general split is kept for safety.
        by_medium: Dict[MediaType, int] = {}
        for medium in active.values():
            by_medium[medium] = by_medium.get(medium, 0) + 1
        out: Dict[Hashable, float] = {}
        for key, medium in active.items():
            rate = self._trace_for(medium).bandwidth_at(t)
            out[key] = rate / by_medium[medium]
        return out

    def next_change_after(self, t: float) -> float:
        return min(
            self.video_trace.next_change_after(t),
            self.audio_trace.next_change_after(t),
        )


def shared(trace: BandwidthTrace, rtt_s: float = 0.0) -> SharedBottleneck:
    """Shorthand used throughout the experiments."""
    return SharedBottleneck(trace, rtt_s=rtt_s)
