"""Session-invariant checker run over chaos-surviving results.

Surviving chaos is necessary but not sufficient: a grid that *returns*
rows after workers were killed and requeued could still be returning
damaged rows. These checks assert the physical laws every simulated
session must obey regardless of how many times its worker died:

* the byte ledger closes — ``served == played + wasted + resumed``
  (PR 1's accounting identity);
* buffer levels are never negative;
* every session terminates with a verdict: it stamps an end time and
  is either completed, degraded with an explicit ``termination_reason``,
  or cut off by the simulation-time ceiling (which always lies well
  past the content duration);
* stalls and download records are well-formed and inside the session.

:func:`check_session` inspects one result; :func:`check_cohort` does
the same for a multi-session :class:`~repro.sim.cohort.CohortResult`
(per-edge byte conservation, fair-share bounds, every-session-has-a-
verdict, no silent starvation); :func:`check_outcomes` sweeps a grid's
outcomes, dispatching per result type and tagging each violation with
the offending job. The engine runs the sweep automatically after any
chaos run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.records import SessionResult

#: Float-noise tolerance for "never negative" buffer levels.
_NEG_EPS = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One broken law, with enough detail to debug it."""

    invariant: str
    detail: str
    job: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"[{self.job}] " if self.job else ""
        return f"{prefix}{self.invariant}: {self.detail}"


def check_session(result: SessionResult) -> List[InvariantViolation]:
    """Every violated invariant for one session (empty = healthy)."""
    violations: List[InvariantViolation] = []

    ledger = result.byte_accounting()
    if not ledger["reconciles"]:
        violations.append(
            InvariantViolation(
                "byte-accounting",
                "served != played + wasted + resumed: "
                f"{ledger['bits_served']:.0f} != {ledger['bits_played']:.0f} "
                f"+ {ledger['bits_wasted']:.0f} + {ledger['bits_resumed']:.0f}",
            )
        )

    for sample in result.buffer_timeline:
        if sample.video_level_s < -_NEG_EPS or sample.audio_level_s < -_NEG_EPS:
            violations.append(
                InvariantViolation(
                    "non-negative-buffers",
                    f"t={sample.t:.3f}: video={sample.video_level_s:.6f}s "
                    f"audio={sample.audio_level_s:.6f}s",
                )
            )
            break  # one witness is enough; don't flood the report

    if result.ended_at_s is None:
        violations.append(
            InvariantViolation("terminates", "session has no end timestamp")
        )
    elif not (
        result.completed
        or result.termination_reason is not None
        or result.ended_at_s >= result.content_duration_s
    ):
        # The only legitimate incomplete-without-reason exit is the
        # max-sim-time ceiling, which always lies past the content
        # duration; anything else ended without a verdict.
        violations.append(
            InvariantViolation(
                "terminates",
                f"incomplete at t={result.ended_at_s:.3f} with no "
                "termination reason",
            )
        )

    end = result.ended_at_s if result.ended_at_s is not None else float("inf")
    for stall in result.stalls:
        if stall.end_s is None:
            violations.append(
                InvariantViolation(
                    "stalls-well-formed",
                    f"open stall starting at t={stall.start_s:.3f}",
                )
            )
        elif stall.end_s < stall.start_s or stall.end_s > end + _NEG_EPS:
            violations.append(
                InvariantViolation(
                    "stalls-well-formed",
                    f"stall [{stall.start_s:.3f}, {stall.end_s:.3f}] outside "
                    f"[start, {end:.3f}]",
                )
            )

    for record in result.downloads:
        if record.completed_at < record.started_at:
            violations.append(
                InvariantViolation(
                    "downloads-well-formed",
                    f"chunk {record.chunk_index} ({record.medium.value}) "
                    f"completed at {record.completed_at:.3f} before its "
                    f"start {record.started_at:.3f}",
                )
            )
        if not 0 <= record.chunk_index < result.n_chunks:
            violations.append(
                InvariantViolation(
                    "downloads-well-formed",
                    f"chunk index {record.chunk_index} outside "
                    f"[0, {result.n_chunks})",
                )
            )

    return violations


#: Relative slack for the cohort edge ledger: the fluid kernel credits
#: a completing flow its exact size while the edge integrates
#: ``rate * dt``, so the two sides agree only to fp accumulation error.
_LEDGER_RTOL = 1e-6
#: Absolute ledger slack (bits) for nearly-idle edges.
_LEDGER_ATOL = 1e4


def check_cohort(result) -> List[InvariantViolation]:
    """Cohort-level laws for one :class:`~repro.sim.cohort.CohortResult`.

    * **edge-byte-ledger** — per edge, the capacity integral over busy
      time equals the sum of per-flow settlements (useful + wasted
      bits); and settlements never exceed what the uplink could have
      carried (``capacity * busy_s``). A processor-sharing bookkeeping
      bug (lost flow, double-credited completion, missed settle)
      breaks one of the two.
    * **fair-share-bounds** — no edge serves more than its capacity
      times its busy time; wasted + useful add up to settled.
    * **every-session-verdicted** — the summaries (when kept) and the
      verdict counts agree with ``n_sessions``, and no verdict is the
      ``no_verdict`` sentinel: every session either completed or
      carries an explicit degradation reason. "Zero aborted sessions"
      is this line.
    * **no-silent-starvation** — a session that neither completed nor
      downloaded a single chunk must carry a termination reason (it
      must have died of exhausted attempts/budget/ceiling, not fallen
      out of the event loop).
    """
    violations: List[InvariantViolation] = []

    for edge_id, ledger in result.edges.items():
        served = ledger["served_bits"]
        settled = ledger["settled_bits"]
        useful = ledger["useful_bits"]
        wasted = ledger["wasted_bits"]
        capacity_bits = ledger["capacity_kbps"] * 1000.0 * ledger["busy_s"]
        slack = _LEDGER_RTOL * max(served, settled, 1.0) + _LEDGER_ATOL
        if abs(served - settled) > slack:
            violations.append(
                InvariantViolation(
                    "edge-byte-ledger",
                    f"{edge_id}: served {served:.0f} != settled {settled:.0f} "
                    f"(useful {useful:.0f} + wasted {wasted:.0f})",
                )
            )
        if abs((useful + wasted) - settled) > slack:
            violations.append(
                InvariantViolation(
                    "edge-byte-ledger",
                    f"{edge_id}: useful {useful:.0f} + wasted {wasted:.0f} "
                    f"!= settled {settled:.0f}",
                )
            )
        if settled > capacity_bits + slack:
            violations.append(
                InvariantViolation(
                    "fair-share-bounds",
                    f"{edge_id}: settled {settled:.0f} bits exceed capacity "
                    f"* busy time = {capacity_bits:.0f}",
                )
            )

    counted = sum(result.verdict_counts.values())
    if counted != result.n_sessions:
        violations.append(
            InvariantViolation(
                "every-session-verdicted",
                f"verdict counts cover {counted} of {result.n_sessions} sessions",
            )
        )
    if result.verdict_counts.get("no_verdict"):
        violations.append(
            InvariantViolation(
                "every-session-verdicted",
                f"{result.verdict_counts['no_verdict']} session(s) ended "
                "without completing and without a termination reason",
            )
        )
    if result.completed_sessions + result.degraded_sessions != result.n_sessions:
        violations.append(
            InvariantViolation(
                "every-session-verdicted",
                f"completed {result.completed_sessions} + degraded "
                f"{result.degraded_sessions} != {result.n_sessions}",
            )
        )

    for summary in result.summaries:
        if not summary.completed and summary.termination_reason is None:
            violations.append(
                InvariantViolation(
                    "every-session-verdicted",
                    f"session {summary.session_id} is incomplete with no reason",
                )
            )
        if (
            not summary.completed
            and summary.chunks_downloaded == 0
            and summary.termination_reason is None
        ):
            violations.append(
                InvariantViolation(
                    "no-silent-starvation",
                    f"session {summary.session_id} starved with no verdict",
                )
            )
        if summary.stall_s < -_NEG_EPS or summary.startup_delay_s < -_NEG_EPS:
            violations.append(
                InvariantViolation(
                    "non-negative-buffers",
                    f"session {summary.session_id}: stall {summary.stall_s:.6f}s "
                    f"startup {summary.startup_delay_s:.6f}s",
                )
            )

    return violations


def check_outcomes(outcomes: Sequence) -> List[InvariantViolation]:
    """Sweep a grid's outcomes; failed jobs (no result) are skipped —
    they are already surfaced through ``JobOutcome.error``."""
    violations: List[InvariantViolation] = []
    for outcome in outcomes:
        result = getattr(outcome, "result", None)
        if result is None:
            continue
        label = outcome.job.key()[:12]
        if isinstance(result, SessionResult):
            found = check_session(result)
        elif hasattr(result, "verdict_counts"):
            found = check_cohort(result)
        else:  # unknown result types have no laws to check
            continue
        violations.extend(
            InvariantViolation(v.invariant, v.detail, job=label)
            for v in found
        )
    return violations
