"""Session-invariant checker run over chaos-surviving results.

Surviving chaos is necessary but not sufficient: a grid that *returns*
rows after workers were killed and requeued could still be returning
damaged rows. These checks assert the physical laws every simulated
session must obey regardless of how many times its worker died:

* the byte ledger closes — ``served == played + wasted + resumed``
  (PR 1's accounting identity);
* buffer levels are never negative;
* every session terminates with a verdict: it stamps an end time and
  is either completed, degraded with an explicit ``termination_reason``,
  or cut off by the simulation-time ceiling (which always lies well
  past the content duration);
* stalls and download records are well-formed and inside the session.

:func:`check_session` inspects one result; :func:`check_outcomes`
sweeps a grid's outcomes and tags each violation with the offending
job. The engine runs the sweep automatically after any chaos run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.records import SessionResult

#: Float-noise tolerance for "never negative" buffer levels.
_NEG_EPS = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One broken law, with enough detail to debug it."""

    invariant: str
    detail: str
    job: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"[{self.job}] " if self.job else ""
        return f"{prefix}{self.invariant}: {self.detail}"


def check_session(result: SessionResult) -> List[InvariantViolation]:
    """Every violated invariant for one session (empty = healthy)."""
    violations: List[InvariantViolation] = []

    ledger = result.byte_accounting()
    if not ledger["reconciles"]:
        violations.append(
            InvariantViolation(
                "byte-accounting",
                "served != played + wasted + resumed: "
                f"{ledger['bits_served']:.0f} != {ledger['bits_played']:.0f} "
                f"+ {ledger['bits_wasted']:.0f} + {ledger['bits_resumed']:.0f}",
            )
        )

    for sample in result.buffer_timeline:
        if sample.video_level_s < -_NEG_EPS or sample.audio_level_s < -_NEG_EPS:
            violations.append(
                InvariantViolation(
                    "non-negative-buffers",
                    f"t={sample.t:.3f}: video={sample.video_level_s:.6f}s "
                    f"audio={sample.audio_level_s:.6f}s",
                )
            )
            break  # one witness is enough; don't flood the report

    if result.ended_at_s is None:
        violations.append(
            InvariantViolation("terminates", "session has no end timestamp")
        )
    elif not (
        result.completed
        or result.termination_reason is not None
        or result.ended_at_s >= result.content_duration_s
    ):
        # The only legitimate incomplete-without-reason exit is the
        # max-sim-time ceiling, which always lies past the content
        # duration; anything else ended without a verdict.
        violations.append(
            InvariantViolation(
                "terminates",
                f"incomplete at t={result.ended_at_s:.3f} with no "
                "termination reason",
            )
        )

    end = result.ended_at_s if result.ended_at_s is not None else float("inf")
    for stall in result.stalls:
        if stall.end_s is None:
            violations.append(
                InvariantViolation(
                    "stalls-well-formed",
                    f"open stall starting at t={stall.start_s:.3f}",
                )
            )
        elif stall.end_s < stall.start_s or stall.end_s > end + _NEG_EPS:
            violations.append(
                InvariantViolation(
                    "stalls-well-formed",
                    f"stall [{stall.start_s:.3f}, {stall.end_s:.3f}] outside "
                    f"[start, {end:.3f}]",
                )
            )

    for record in result.downloads:
        if record.completed_at < record.started_at:
            violations.append(
                InvariantViolation(
                    "downloads-well-formed",
                    f"chunk {record.chunk_index} ({record.medium.value}) "
                    f"completed at {record.completed_at:.3f} before its "
                    f"start {record.started_at:.3f}",
                )
            )
        if not 0 <= record.chunk_index < result.n_chunks:
            violations.append(
                InvariantViolation(
                    "downloads-well-formed",
                    f"chunk index {record.chunk_index} outside "
                    f"[0, {result.n_chunks})",
                )
            )

    return violations


def check_outcomes(outcomes: Sequence) -> List[InvariantViolation]:
    """Sweep a grid's outcomes; failed jobs (no result) are skipped —
    they are already surfaced through ``JobOutcome.error``."""
    violations: List[InvariantViolation] = []
    for outcome in outcomes:
        result = getattr(outcome, "result", None)
        if result is None:
            continue
        label = outcome.job.key()[:12]
        violations.extend(
            InvariantViolation(v.invariant, v.detail, job=label)
            for v in check_session(result)
        )
    return violations
