"""Seeded, deterministic fault schedules for the chaos harness.

A :class:`ChaosSchedule` is plain frozen data — it crosses the process
boundary by pickling and decides faults by hashing, never by drawing
from shared RNG state. Whether attempt *n* of job *k* faults, and with
which :class:`FaultKind`, is a pure function of ``(seed, job key,
attempt)``: every worker, every rerun and every resumed sweep sees the
same schedule, which is what lets the tests assert exact recovery
behaviour rather than "usually survives".
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..errors import ExperimentError


class FaultKind(enum.Enum):
    """What the injector does to the chosen worker.

    * ``KILL`` — SIGKILL itself mid-job (segfault/OOM-killer stand-in):
      the pool breaks and the parent must requeue on a fresh pool.
    * ``HANG`` — sleep past the job deadline: the watchdog must notice
      and kill the hung worker.
    * ``RAISE`` — raise :class:`~repro.chaos.injector.ChaosError`
      mid-job: plain crash isolation, no pool damage.
    * ``TRUNCATE`` — write a torn cache entry straight to the final
      path, then SIGKILL itself (death mid-write): the cache must
      classify the leftover as truncated and evict it on resume.
    """

    KILL = "kill"
    HANG = "hang"
    RAISE = "raise"
    TRUNCATE = "truncate"


#: ``--chaos all`` shorthand.
ALL_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)


@dataclass(frozen=True)
class ChaosSchedule:
    """Deterministic fault plan over (job key, attempt) coordinates.

    ``probability`` is the chance a coordinate faults at all;
    ``fault_attempts`` caps which attempts are eligible (the default 1
    faults only first attempts, so a retry always finds clear sky and
    a grid with ``retries >= 1`` is guaranteed to drain). ``hang_s``
    sizes the HANG fault's sleep — it must exceed the job deadline for
    the watchdog to be exercised. ``log_path`` (optional) collects one
    JSON line per injected fault and per recovery action.
    """

    kinds: Tuple[FaultKind, ...] = ALL_KINDS
    probability: float = 1.0
    fault_attempts: int = 1
    seed: int = 0
    hang_s: float = 30.0
    log_path: Optional[str] = field(default=None, compare=False)

    def __post_init__(self):
        if not self.kinds:
            raise ExperimentError("chaos schedule needs at least one fault kind")
        if not 0.0 <= self.probability <= 1.0:
            raise ExperimentError(
                f"chaos probability must be in [0, 1], got {self.probability}"
            )

    def _draw(self, job_key: str, attempt: int) -> Tuple[float, int]:
        """Two independent deterministic uniforms for one coordinate."""
        digest = hashlib.sha256(
            f"chaos|{self.seed}|{job_key}|{attempt}".encode("utf-8")
        ).digest()
        gate = int.from_bytes(digest[:8], "big") / 2**64
        pick = int.from_bytes(digest[8:16], "big")
        return gate, pick

    def fault_for(self, job_key: str, attempt: int) -> Optional[FaultKind]:
        """The fault scheduled for this attempt, or ``None``."""
        if attempt > self.fault_attempts:
            return None
        gate, pick = self._draw(job_key, attempt)
        if gate >= self.probability:
            return None
        return self.kinds[pick % len(self.kinds)]

    def with_log(self, log_path: Optional[str]) -> "ChaosSchedule":
        return replace(self, log_path=log_path)

    def spec(self) -> str:
        """Round-trippable spec string (shown in report params)."""
        kinds = "-".join(kind.value for kind in self.kinds)
        return (
            f"{kinds}:p={self.probability},attempts={self.fault_attempts},"
            f"seed={self.seed},hang={self.hang_s}"
        )

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosSchedule":
        """Parse the CLI's ``--chaos`` grammar.

        ``KINDS[:KEY=VALUE,...]`` where ``KINDS`` is dash-separated
        fault names (``kill-hang``) or ``all``, and the options are
        ``p`` (probability), ``attempts`` (eligible attempts), ``seed``
        and ``hang`` (hang sleep, seconds). Examples::

            --chaos all
            --chaos kill-hang
            --chaos raise:p=0.5,seed=3
            --chaos kill-hang:hang=20,attempts=2
        """
        head, _, tail = spec.strip().partition(":")
        if not head:
            raise ExperimentError(f"empty chaos spec {spec!r}")
        if head == "all":
            kinds = ALL_KINDS
        else:
            try:
                kinds = tuple(FaultKind(name) for name in head.split("-"))
            except ValueError:
                known = "-".join(k.value for k in ALL_KINDS)
                raise ExperimentError(
                    f"unknown fault kind in {head!r}; known kinds: {known} "
                    f"(dash-separated), or 'all'"
                ) from None
        options = {}
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ExperimentError(
                        f"chaos option {item!r} is not KEY=VALUE"
                    )
                options[key.strip()] = value.strip()
        probability = options.pop("p", "1.0")
        fault_attempts = options.pop("attempts", "1")
        seed = options.pop("seed", "0")
        hang_s = options.pop("hang", "30.0")
        log_path = options.pop("log", None)
        if options:
            raise ExperimentError(
                f"unknown chaos option(s): {sorted(options)}; "
                f"known: p, attempts, seed, hang, log"
            )
        try:
            return cls(
                kinds=kinds,
                probability=float(probability),
                fault_attempts=int(fault_attempts),
                seed=int(seed),
                hang_s=float(hang_s),
                log_path=log_path,
            )
        except ValueError as exc:
            raise ExperimentError(f"bad chaos option value: {exc}") from None
