"""Fault injection that proves the runner's crash-safety.

The chaos harness has three parts:

* :mod:`~repro.chaos.schedule` — a seeded, deterministic fault plan
  (:class:`ChaosSchedule`): whether attempt *n* of job *k* faults, and
  how, is a pure hash of ``(seed, job key, attempt)``, so every rerun
  sees the same storm.
* :mod:`~repro.chaos.injector` — worker-side execution of the plan:
  real SIGKILLs, real sleeps past the deadline, real mid-job raises,
  real torn cache files. The engine under test recovers from actual
  damage, not mocks.
* :mod:`~repro.chaos.invariants` — the laws every surviving session
  must still obey (byte ledger closes, buffers never negative, every
  session ends with a verdict), checked over each chaos run's results.

The end-to-end guarantee, property-tested in ``tests/test_chaos.py``:
a grid run under chaos with retries produces rows byte-identical to
the clean serial run, and a resumed interrupted sweep recomputes only
its incomplete cells.
"""

from .injector import ChaosError, inject, log_event
from .invariants import (
    InvariantViolation,
    check_cohort,
    check_outcomes,
    check_session,
)
from .schedule import ALL_KINDS, ChaosSchedule, FaultKind

__all__ = [
    "ALL_KINDS",
    "ChaosError",
    "ChaosSchedule",
    "FaultKind",
    "InvariantViolation",
    "check_cohort",
    "check_outcomes",
    "check_session",
    "inject",
    "log_event",
]
