"""Worker-side fault execution and the chaos event log.

:func:`inject` runs at the top of every worker attempt when a chaos
schedule is active. It consults the schedule (pure data, pure hash —
see :mod:`repro.chaos.schedule`) and, if this ``(job, attempt)``
coordinate is chosen, *actually does the damage*: SIGKILLs the worker,
sleeps past the deadline, raises mid-job, or leaves a torn cache entry
and then dies. Nothing here is simulated at the engine's level of
abstraction — the engine under test sees real dead processes and real
truncated files, which is the point of the harness.

Every injected fault (and every recovery action the engine takes) is
appended to a JSON-lines event log when the schedule carries a
``log_path``, so a chaos run leaves an auditable timeline behind — CI
uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Optional

from ..errors import SimulationError
from .schedule import ChaosSchedule, FaultKind


class ChaosError(SimulationError):
    """The injected mid-job exception (the RAISE fault)."""


def log_event(log_path: Optional[str], **event) -> None:
    """Append one JSON event line; a single O_APPEND write so chaos
    workers and the parent can interleave safely.

    The chaos log stays *plain* JSON lines (CI greps it directly); only
    the append idiom is shared with the framed replay logs via
    :func:`repro.framing.append_line`.
    """
    if not log_path:
        return
    from ..framing import append_line

    event.setdefault("pid", os.getpid())
    line = json.dumps(event, sort_keys=True) + "\n"
    # a lost log line must never fail the run -> best_effort
    append_line(log_path, line.encode("utf-8"), best_effort=True)


def inject(
    schedule: ChaosSchedule,
    job_key: str,
    attempt: int,
    cache_root: Optional[str] = None,
) -> Optional[FaultKind]:
    """Execute the scheduled fault for this attempt, if any.

    Returns the fault that was injected *and survived* (only HANG — it
    delays, then lets the attempt proceed), ``None`` when the
    coordinate is clear. KILL and TRUNCATE never return; RAISE raises.
    """
    fault = schedule.fault_for(job_key, attempt)
    if fault is None:
        return None
    log_event(
        schedule.log_path,
        event="fault",
        fault=fault.value,
        job=job_key[:12],
        attempt=attempt,
    )
    if fault is FaultKind.KILL:
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL returned")  # pragma: no cover
    if fault is FaultKind.HANG:
        time.sleep(schedule.hang_s)
        return fault
    if fault is FaultKind.RAISE:
        raise ChaosError(
            f"chaos: injected failure (job {job_key[:12]}, attempt {attempt})"
        )
    if fault is FaultKind.TRUNCATE:
        if cache_root:
            from ..runner.cache import ResultCache

            ResultCache(cache_root).write_torn(job_key)
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL returned")  # pragma: no cover
    raise ChaosError(f"chaos: unhandled fault kind {fault!r}")  # pragma: no cover
