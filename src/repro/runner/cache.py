"""Content-addressed on-disk cache of simulated session results.

Entries live under ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the
job's sha256 spec hash (:meth:`repro.runner.jobs.SimulationJob.key`).
Values are pickled :class:`~repro.sim.records.SessionResult` objects,
so a hit replays the original run *bit-identically* — every float,
record and timeline survives the round trip, which is what lets a
cached experiment produce byte-equal report rows.

The cache is safe to share between concurrent runs: writes go through
a per-process temp file and an atomic :func:`os.replace`, and a
corrupt or truncated entry is treated as a miss and evicted rather
than raised.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Optional

from ..sim.records import SessionResult

DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class ResultCache:
    """Pickle-backed result store keyed by job spec hash."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def get(self, key: str) -> Optional[SessionResult]:
        """The cached result for ``key``, or ``None`` (counted a miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                payload = f.read()
            result = pickle.loads(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            # Corrupt/truncated/stale-class entry: evict and re-simulate.
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        if not isinstance(result, SessionResult):
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(payload)
        return result

    def put(self, key: str, result: SessionResult) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(payload)
        os.replace(tmp, path)
        self.stats.bytes_written += len(payload)

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(shard_dir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed
