"""Content-addressed on-disk cache of simulated session results.

Entries live under ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the
job's sha256 spec hash (:meth:`repro.runner.jobs.SimulationJob.key`).
Values are pickled :class:`~repro.sim.records.SessionResult` objects,
so a hit replays the original run *bit-identically* — every float,
record and timeline survives the round trip, which is what lets a
cached experiment produce byte-equal report rows.

The cache is safe to share between concurrent runs: writes go through
a per-process temp file and an atomic :func:`os.replace`, and a
corrupt entry is treated as a miss and evicted rather than raised.
Every entry is framed (magic, payload length, CRC32) so the cache can
tell *truncation* — a worker killed mid-write before the rename, or a
torn entry from a full disk — apart from garbage, and account for each
separately (``truncated`` vs ``evictions`` stats). Both recover the
same way: evict and re-simulate.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Optional

# Entry framing (magic, 8-byte big-endian payload length, CRC32 of the
# payload, then the pickled payload) lives in :mod:`repro.framing`,
# shared with the replay event logs; re-exported here because tests and
# the chaos injector historically import it from the cache module.
from ..framing import (  # noqa: F401  (re-exports)
    ENTRY_HEADER_SIZE as HEADER_SIZE,
    ENTRY_MAGIC,
    TRUNCATED,
    frame_payload,
    unframe_payload,
)
from ..sim.records import SessionResult

DEFAULT_CACHE_DIR = ".repro-cache"


def _cacheable_types() -> tuple:
    """What a CRC-valid entry may deserialize to. Anything else is a
    stale class layout or a hostile write: evicted, never returned.

    Resolved lazily: ``sim.cohort`` reaches back into ``runner`` (via
    ``topology.jobs``), so a top-level import here would cycle.
    """
    from ..sim.cohort import CohortResult

    return (SessionResult, CohortResult)


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    evictions: int = 0
    truncated: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "evictions": self.evictions,
            "truncated": self.truncated,
        }


class ResultCache:
    """Pickle-backed result store keyed by job spec hash."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def _evict(self, path: str, truncated: bool = False) -> None:
        self.stats.misses += 1
        self.stats.evictions += 1
        if truncated:
            self.stats.truncated += 1
        try:
            os.remove(path)
        except OSError:
            pass

    def get(self, key: str) -> Optional[SessionResult]:
        """The cached result for ``key``, or ``None`` (counted a miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self._evict(path)
            return None
        payload, kind = unframe_payload(data)
        if payload is None:
            self._evict(path, truncated=kind == TRUNCATED)
            return None
        try:
            result = pickle.loads(payload)
        except Exception:
            # A CRC-valid frame whose pickle still fails means a stale
            # class layout (or a hostile write): corrupt, not truncated.
            self._evict(path)
            return None
        if not isinstance(result, _cacheable_types()):
            self._evict(path)
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        return result

    def put(self, key: str, result: SessionResult) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        framed = frame_payload(payload)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(framed)
        os.replace(tmp, path)
        self.stats.bytes_written += len(framed)

    def write_torn(self, key: str, fraction: float = 0.5) -> str:
        """Write a deliberately truncated entry straight to the final
        path — the failure a worker killed mid-write (or a full disk)
        leaves behind. The chaos injector's ``truncate`` fault and the
        regression tests use this; production writes never bypass the
        temp-file/rename protocol.
        """
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(("torn-entry", key), protocol=pickle.HIGHEST_PROTOCOL)
        framed = frame_payload(payload)
        cut = max(1, int(len(framed) * fraction))
        with open(path, "wb") as f:
            f.write(framed[:cut])
        return path

    def entry_count(self) -> int:
        """How many entries are currently on disk (resume accounting)."""
        count = 0
        if not os.path.isdir(self.root):
            return count
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            count += sum(1 for n in os.listdir(shard_dir) if n.endswith(".pkl"))
        return count

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(shard_dir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed
