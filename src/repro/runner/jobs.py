"""Picklable simulation-job specs with content-addressed keys.

A grid experiment describes each cell as a :class:`SimulationJob` —
plain data naming the content, the player build recipe, the bandwidth
trace, the failure/retry configuration and a replicate seed. Specs
(not live objects) cross the process boundary: the worker rebuilds the
content, player and network from the spec, so no manifest, RNG or
player state is ever shared between cells, and two processes handed
the same spec run byte-identical simulations.

Every job has a stable content-addressed :meth:`~SimulationJob.key`
(sha256 over the canonical spec JSON plus a schema version), which is
both the cache key and the determinism contract: any field that can
change the simulation outcome participates in the hash, so editing a
trace, a seed or a retry policy misses the cache instead of replaying
a stale result.

The key layout — every field and ``spec_dict()`` key of the dataclasses
reachable from :meth:`SimulationJob.key` — is a guarded compatibility
surface, snapshotted in ``surfaces/spec_keys.json``. Changing it fails
``repro-abr lint`` (``SURF-KEY-CHURN``) until the change is recorded
with ``--update-surfaces``, and a *semantic* change must also bump
:data:`SPEC_SCHEMA_VERSION` so old cache entries miss instead of
colliding (decision table in ``docs/static_analysis.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..errors import ExperimentError
from ..net.resilience import FailureKind, ResilienceModel, RetryPolicy
from ..net.traces import BandwidthTrace

#: Bump when the spec schema or the simulation's observable behaviour
#: changes incompatibly; every cached entry from older schemas misses.
SPEC_SCHEMA_VERSION = 1

# -- content ----------------------------------------------------------------


def _drama_show():
    from ..media.content import drama_show

    return drama_show()


#: Registry of named content builders (kept tiny and lazy so importing
#: the runner does not pull the whole media layer into every worker).
_CONTENT_REGISTRY: Dict[str, Callable[[], object]] = {"drama": _drama_show}


def register_content(name: str):
    """Decorator registering a zero-arg content factory under ``name``."""

    def decorate(fn: Callable[[], object]):
        # Import-time registration runs identically in every process
        # before any pool exists (hence the waiver below).
        _CONTENT_REGISTRY[name] = fn  # lint: allow[POOL-GLOBAL-MUTABLE]
        return fn

    return decorate


@dataclass(frozen=True)
class ContentSpec:
    """A named title from the content registry."""

    name: str = "drama"

    def build(self):
        try:
            factory = _CONTENT_REGISTRY[self.name]
        except KeyError:
            raise ExperimentError(
                f"unknown content {self.name!r}; known: {sorted(_CONTENT_REGISTRY)}"
            ) from None
        return factory()


# -- traces -----------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for a bandwidth trace.

    ``kind`` selects the builder; ``args`` are its positional
    parameters, kept as plain tuples so the spec hashes canonically:

    * ``constant`` — ``(kbps,)``
    * ``pairs`` — ``((duration_s, kbps), ...)``
    * ``hspa`` / ``lte`` — ``(seed, duration_s)`` Markov presets
    * ``random_walk`` — ``(mean_kbps, seed)``
    * ``func`` — ``("package.module", "function")``: any importable
      zero-arg trace factory (how the named paper profiles in
      :mod:`repro.experiments.traces` ride the runner).
    """

    kind: str
    args: Tuple = ()

    @classmethod
    def constant(cls, kbps: float) -> "TraceSpec":
        return cls("constant", (float(kbps),))

    @classmethod
    def pairs(cls, pairs) -> "TraceSpec":
        return cls("pairs", tuple((float(d), float(k)) for d, k in pairs))

    @classmethod
    def hspa(cls, seed: int, duration_s: float = 300.0) -> "TraceSpec":
        return cls("hspa", (int(seed), float(duration_s)))

    @classmethod
    def lte(cls, seed: int, duration_s: float = 300.0) -> "TraceSpec":
        return cls("lte", (int(seed), float(duration_s)))

    @classmethod
    def random_walk(cls, mean_kbps: float, seed: int) -> "TraceSpec":
        return cls("random_walk", (float(mean_kbps), int(seed)))

    @classmethod
    def func(cls, module: str, function: str) -> "TraceSpec":
        return cls("func", (module, function))

    def build(self) -> BandwidthTrace:
        from ..net import markov, traces

        if self.kind == "constant":
            return traces.constant(self.args[0])
        if self.kind == "pairs":
            return traces.from_pairs(list(self.args))
        if self.kind == "hspa":
            return markov.hspa_preset(seed=self.args[0], duration_s=self.args[1])
        if self.kind == "lte":
            return markov.lte_preset(seed=self.args[0], duration_s=self.args[1])
        if self.kind == "random_walk":
            return traces.random_walk(mean_kbps=self.args[0], seed=self.args[1])
        if self.kind == "func":
            module = importlib.import_module(self.args[0])
            return getattr(module, self.args[1])()
        raise ExperimentError(f"unknown trace kind {self.kind!r}")


# -- players ----------------------------------------------------------------

PLAYER_NAMES = (
    "exoplayer-dash",
    "exoplayer-hls",
    "shaka",
    "dashjs",
    "recommended",
)


@dataclass(frozen=True)
class PlayerSpec:
    """Recipe for a player model, mirroring the experiments' builders.

    ``combinations`` picks the manifest the player adapts over
    (``"hsub"`` = curated H_sub, ``"all"`` = the full H_all listing);
    ``audio_order`` reorders HLS audio renditions (the ExoPlayer-HLS
    pinned-first-audio pathology is triggered by listing A3 first).
    """

    name: str
    combinations: str = "hsub"
    audio_order: Optional[Tuple[str, ...]] = None

    def build(self, content):
        from ..core.combinations import all_combinations, hsub_combinations
        from ..core.player import RecommendedPlayer
        from ..manifest.packager import package_dash, package_hls
        from ..players.dashjs import DashJsPlayer
        from ..players.exoplayer import ExoPlayerDash, ExoPlayerHls
        from ..players.shaka import ShakaPlayer

        combos = (
            hsub_combinations(content)
            if self.combinations == "hsub"
            else all_combinations(content)
        )
        if self.name == "exoplayer-dash":
            return ExoPlayerDash(package_dash(content))
        if self.name == "exoplayer-hls":
            master = package_hls(
                content,
                combinations=combos if self.combinations == "hsub" else None,
                audio_order=list(self.audio_order) if self.audio_order else None,
            ).master
            return ExoPlayerHls(master)
        if self.name == "shaka":
            master = package_hls(
                content,
                combinations=combos if self.combinations == "hsub" else None,
            ).master
            return ShakaPlayer.from_hls(master)
        if self.name == "dashjs":
            return DashJsPlayer(package_dash(content))
        if self.name == "recommended":
            return RecommendedPlayer(combos)
        raise ExperimentError(
            f"unknown player {self.name!r}; known: {PLAYER_NAMES}"
        )


# -- failure injection ------------------------------------------------------


@dataclass(frozen=True)
class FailureSpec:
    """Recipe for a seeded failure model.

    ``taxonomy=False`` rebuilds the legacy anonymous
    :class:`~repro.net.failures.FailureModel`; ``True`` the full
    :class:`~repro.net.resilience.ResilienceModel`. ``mix`` is a tuple
    of ``(FailureKind value, weight)`` pairs (``None`` = model
    default) in *caller order* — the model maps uniform draws through
    the mix's cumulative weights, so ordering is part of the seeded
    behaviour and must survive the spec round trip.
    """

    probability: float
    seed: int = 0
    taxonomy: bool = False
    resume_probability: float = 0.6
    mix: Optional[Tuple[Tuple[str, float], ...]] = None

    @classmethod
    def with_mix(
        cls,
        probability: float,
        seed: int,
        mix: Optional[Dict[FailureKind, float]],
        resume_probability: float = 0.6,
    ) -> "FailureSpec":
        packed = None
        if mix is not None:
            packed = tuple((kind.value, float(w)) for kind, w in mix.items())
        return cls(
            probability=probability,
            seed=seed,
            taxonomy=True,
            resume_probability=resume_probability,
            mix=packed,
        )

    def build(self):
        if not self.taxonomy:
            from ..net.failures import FailureModel

            return FailureModel(self.probability, seed=self.seed)
        mix = None
        if self.mix is not None:
            mix = {FailureKind(value): weight for value, weight in self.mix}
        return ResilienceModel(
            self.probability,
            seed=self.seed,
            mix=mix,
            resume_probability=self.resume_probability,
        )


# -- the job ----------------------------------------------------------------


@dataclass(frozen=True)
class SimulationJob:
    """One grid cell: everything needed to replay one session.

    ``seed`` is a free grid coordinate (replicate index); it
    participates in the key even when no sub-spec reads it, so
    replicates of an otherwise identical cell cache independently.
    """

    content: ContentSpec = field(default_factory=ContentSpec)
    player: PlayerSpec = field(default_factory=lambda: PlayerSpec("recommended"))
    trace: TraceSpec = field(default_factory=lambda: TraceSpec.constant(1000.0))
    rtt_s: float = 0.0
    failure: Optional[FailureSpec] = None
    retry_policy: Optional[RetryPolicy] = None
    live_offset_s: Optional[float] = None
    seed: int = 0

    def spec_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form; the basis of the cache key."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "content": dataclasses.asdict(self.content),
            "player": dataclasses.asdict(self.player),
            "trace": dataclasses.asdict(self.trace),
            "rtt_s": self.rtt_s,
            "failure": (
                None if self.failure is None else dataclasses.asdict(self.failure)
            ),
            "retry_policy": (
                None
                if self.retry_policy is None
                else dataclasses.asdict(self.retry_policy)
            ),
            "live_offset_s": self.live_offset_s,
            "seed": self.seed,
        }

    def key(self) -> str:
        """Stable content-addressed identity of this job."""
        canonical = json.dumps(
            self.spec_dict(), sort_keys=True, separators=(",", ":"), default=list
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human identity for chaos logs and failure messages."""
        return (
            f"{self.player.name}/{self.trace.kind}/s{self.seed}"
            f"#{self.key()[:10]}"
        )

    def build(self, observer=None):
        """Rebuild (content, player, network, config) from the spec.

        ``observer`` (a :class:`~repro.sim.session.SessionObserver`)
        taps the rebuilt session's event stream — the runner passes an
        :class:`~repro.replay.EventRecorder` here when ``--record`` is
        set.
        """
        from ..net.link import shared
        from ..sim.session import SessionConfig

        content = self.content.build()
        player = self.player.build(content)
        network = shared(self.trace.build(), rtt_s=self.rtt_s)
        config = SessionConfig(
            live_offset_s=self.live_offset_s,
            failure_model=None if self.failure is None else self.failure.build(),
            retry_policy=self.retry_policy,
            observer=observer,
        )
        return content, player, network, config

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "SimulationJob":
        """Rebuild a job from its :meth:`spec_dict` (JSON round-trip safe).

        The inverse that makes recorded event logs *re-runnable*: a
        log's ``session_meta`` embeds the spec, so
        ``repro-abr replay --verify`` can re-simulate the exact cell
        and compare. Tuples inside the spec were flattened to lists by
        JSON; they are restored here so ``from_spec(j.spec_dict()).key()
        == j.key()`` holds exactly.
        """
        schema = spec.get("schema")
        if schema != SPEC_SCHEMA_VERSION:
            raise ExperimentError(
                f"job spec schema {schema!r} does not match this build "
                f"(expects {SPEC_SCHEMA_VERSION}); the cell cannot be "
                "re-run faithfully"
            )

        def tuplify(value):
            if isinstance(value, (list, tuple)):
                return tuple(tuplify(item) for item in value)
            return value

        content = ContentSpec(**spec["content"])
        player_d = dict(spec["player"])
        if player_d.get("audio_order") is not None:
            player_d["audio_order"] = tuplify(player_d["audio_order"])
        trace_d = dict(spec["trace"])
        failure_d = spec.get("failure")
        failure = None
        if failure_d is not None:
            failure_d = dict(failure_d)
            if failure_d.get("mix") is not None:
                failure_d["mix"] = tuplify(failure_d["mix"])
            failure = FailureSpec(**failure_d)
        retry_d = spec.get("retry_policy")
        return cls(
            content=content,
            player=PlayerSpec(**player_d),
            trace=TraceSpec(trace_d["kind"], tuplify(trace_d.get("args", ()))),
            rtt_s=float(spec.get("rtt_s", 0.0)),
            failure=failure,
            retry_policy=None if retry_d is None else RetryPolicy(**retry_d),
            live_offset_s=spec.get("live_offset_s"),
            seed=int(spec.get("seed", 0)),
        )
