"""Parallel experiment execution with content-addressed result caching.

The experiment layer's grids (player x trace x rate x seed) are
embarrassingly parallel: every cell is one independent seeded
simulation. This package turns a grid cell into a picklable
:class:`~repro.runner.jobs.SimulationJob` *spec* — the recipe for a
session, not the session objects themselves — and fans specs out over
a :class:`concurrent.futures.ProcessPoolExecutor` while preserving
deterministic result ordering. A content-addressed on-disk cache
(:class:`~repro.runner.cache.ResultCache`, ``.repro-cache/`` by
default) replays previously simulated sessions bit-identically.

The engine is crash-safe: per-job wall-clock deadlines enforced by a
watchdog, crash isolation with capped retries on a fresh pool (a dead
or hung worker costs only its job), and checkpoint/resume — completed
cells stream into the cache as they finish, so an interrupted sweep
recomputes only its incomplete jobs. The :mod:`repro.chaos` harness
fault-injects real SIGKILLs, hangs, raises and torn cache entries to
prove those properties rather than assert them.

Entry points:

* :func:`run_jobs` — the engine: jobs in, ordered outcomes out.
* :class:`GridRunner` — per-experiment facade that binds the engine to
  the session-global :class:`RunnerOptions` (set by the CLI's
  ``--jobs`` / ``--cache`` flags) and accumulates cache/wall-time
  stats for ``ExperimentReport.params``.
"""

from .cache import CacheStats, ResultCache
from .engine import (
    EngineStats,
    GridRunner,
    JobOutcome,
    RunnerOptions,
    get_runner_options,
    run_jobs,
    runner_options,
    set_runner_options,
)
from .jobs import (
    ContentSpec,
    FailureSpec,
    PlayerSpec,
    SimulationJob,
    TraceSpec,
    register_content,
)

__all__ = [
    "CacheStats",
    "ContentSpec",
    "EngineStats",
    "FailureSpec",
    "GridRunner",
    "JobOutcome",
    "PlayerSpec",
    "ResultCache",
    "RunnerOptions",
    "SimulationJob",
    "TraceSpec",
    "get_runner_options",
    "register_content",
    "run_jobs",
    "runner_options",
    "set_runner_options",
]
