"""The parallel job engine and the session-global runner options.

:func:`run_jobs` is the core: a list of
:class:`~repro.runner.jobs.SimulationJob` specs in, a list of
:class:`JobOutcome` out, *in input order* regardless of worker
completion order. ``workers=1`` (the default) executes in-process with
no executor at all, so single-worker runs are byte-identical to the
pre-runner serial loops; ``workers>1`` fans cache misses out over a
``ProcessPoolExecutor``. Determinism holds across both paths because
each worker rebuilds its cell from the spec — there is no shared RNG,
player or manifest state to race on.

Experiments reach the engine through :class:`GridRunner`, which binds
the session-global :class:`RunnerOptions` (the CLI's ``--jobs`` /
``--cache`` / ``--cache-dir`` flags) and accumulates wall-time and
cache statistics for ``ExperimentReport.params``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..sim.records import SessionResult
from .cache import ResultCache
from .jobs import SimulationJob


@dataclass
class JobOutcome:
    """One job's result plus where it came from and what it cost."""

    job: SimulationJob
    result: SessionResult
    wall_time_s: float
    cached: bool = False


def _execute(job: SimulationJob) -> Tuple[SessionResult, float]:
    """Worker entry point: rebuild the cell from its spec and run it.

    Module-level (picklable) on purpose; the wall time measured here is
    the simulation cost alone, excluding queueing and transport.
    """
    from ..sim.session import simulate

    started = time.perf_counter()
    content, player, network, config = job.build()
    result = simulate(content, player, network, config)
    return result, time.perf_counter() - started


def run_jobs(
    jobs: Sequence[SimulationJob],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[JobOutcome]:
    """Run every job, returning outcomes in input order.

    Cache hits short-circuit before any worker is consulted; misses are
    simulated (in-process for ``workers<=1``, else on the pool) and
    written back so the next run replays them.
    """
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending: List[int] = []
    for index, job in enumerate(jobs):
        if cache is not None:
            hit = cache.get(job.key())
            if hit is not None:
                outcomes[index] = JobOutcome(
                    job=job, result=hit, wall_time_s=0.0, cached=True
                )
                continue
        pending.append(index)

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            result, wall = _execute(jobs[index])
            outcomes[index] = JobOutcome(jobs[index], result, wall)
            if cache is not None:
                cache.put(jobs[index].key(), result)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(_execute, jobs[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result, wall = future.result()
                    outcomes[index] = JobOutcome(jobs[index], result, wall)
                    if cache is not None:
                        cache.put(jobs[index].key(), result)
    return [outcome for outcome in outcomes if outcome is not None]


# -- session-global options -------------------------------------------------


@dataclass(frozen=True)
class RunnerOptions:
    """How grid experiments should execute in this session.

    ``workers=1`` and ``cache_dir=None`` (the defaults) reproduce the
    historical serial, uncached behaviour exactly — the tier-1 suite
    runs under these defaults.
    """

    workers: int = 1
    cache_dir: Optional[str] = None


_OPTIONS = RunnerOptions()


def get_runner_options() -> RunnerOptions:
    return _OPTIONS


def set_runner_options(
    workers: Optional[int] = None, cache_dir: Optional[str] = None
) -> RunnerOptions:
    """Replace the session-global options; returns the new value."""
    global _OPTIONS
    changes = {}
    if workers is not None:
        changes["workers"] = max(1, int(workers))
    changes["cache_dir"] = cache_dir
    _OPTIONS = replace(_OPTIONS, **changes)
    return _OPTIONS


@contextmanager
def runner_options(
    workers: Optional[int] = None, cache_dir: Optional[str] = None
) -> Iterator[RunnerOptions]:
    """Temporarily override the global options (the CLI uses this)."""
    global _OPTIONS
    previous = _OPTIONS
    try:
        yield set_runner_options(workers=workers, cache_dir=cache_dir)
    finally:
        _OPTIONS = previous


class GridRunner:
    """Per-experiment facade over the engine and the global options.

    One instance per experiment run: it owns a fresh
    :class:`~repro.runner.cache.CacheStats` window (via its own
    :class:`ResultCache` handle) so ``params()`` reports the cache
    behaviour of *this* experiment, not the whole process.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ):
        options = get_runner_options()
        self.workers = options.workers if workers is None else max(1, workers)
        directory = options.cache_dir if cache_dir is None else cache_dir
        self.cache = ResultCache(directory) if directory else None
        self._simulated = 0
        self._sim_wall_s = 0.0
        self._slowest_s = 0.0

    def run(
        self, jobs: Sequence[SimulationJob], use_cache: bool = True
    ) -> List[JobOutcome]:
        """Run a grid; ``use_cache=False`` forces fresh simulation
        (used by determinism checks that must not compare a cached
        result against itself)."""
        cache = self.cache if use_cache else None
        outcomes = run_jobs(jobs, workers=self.workers, cache=cache)
        for outcome in outcomes:
            if not outcome.cached:
                self._simulated += 1
                self._sim_wall_s += outcome.wall_time_s
                self._slowest_s = max(self._slowest_s, outcome.wall_time_s)
        return outcomes

    def results(
        self, jobs: Sequence[SimulationJob], use_cache: bool = True
    ) -> List[SessionResult]:
        """Shorthand when only the session results matter."""
        return [outcome.result for outcome in self.run(jobs, use_cache=use_cache)]

    def params(self) -> dict:
        """Runner provenance for ``ExperimentReport.params``."""
        stats = {
            "workers": self.workers,
            "simulated": self._simulated,
            "sim_wall_s": round(self._sim_wall_s, 3),
            "slowest_job_s": round(self._slowest_s, 3),
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats.as_dict()
        return stats
