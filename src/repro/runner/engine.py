"""The crash-safe parallel job engine and the session-global options.

:func:`run_jobs` is the core: a list of
:class:`~repro.runner.jobs.SimulationJob` specs in, a list of
:class:`JobOutcome` out, *in input order* regardless of worker
completion order. ``workers=1`` (the default) executes in-process with
no executor at all, so single-worker runs are byte-identical to the
pre-runner serial loops; ``workers>1`` fans cache misses out over a
``ProcessPoolExecutor``. Determinism holds across both paths because
each worker rebuilds its cell from the spec — there is no shared RNG,
player or manifest state to race on.

The pool path is hardened against partial failure:

* **Crash isolation** — a worker that raises, segfaults, or takes the
  whole pool down (``BrokenProcessPool``) costs only the jobs it was
  running: they are requeued on a fresh pool up to ``retries`` extra
  attempts, then surfaced as failed :class:`JobOutcome`\\ s with
  ``error``/``attempts`` populated instead of aborting the grid.
* **Deadlines** — with ``timeout_s`` set, a watchdog kills workers
  whose job has run past its wall-clock budget and requeues the job;
  the hung attempt is charged against the retry cap.
* **Checkpoint/resume** — completed cells stream into the
  :class:`~repro.runner.cache.ResultCache` as they finish (not at grid
  end), so re-invoking an interrupted sweep replays the completed
  prefix from cache and recomputes only incomplete jobs.

The engine submits at most ``workers`` jobs at a time, so an in-flight
future is an *executing* attempt — which is what lets pool-break
recovery distinguish the guilty job from queued innocents, and the
watchdog measure execution time rather than queue time.

Experiments reach the engine through :class:`GridRunner`, which binds
the session-global :class:`RunnerOptions` (the CLI's ``--jobs`` /
``--cache`` / ``--job-timeout`` / ``--job-retries`` / ``--chaos``
flags), accumulates recovery statistics for
``ExperimentReport.params``, and runs the chaos invariant checker over
every chaos-surviving result.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, SimulationError
from ..sim.records import SessionResult
from .cache import ResultCache
from .jobs import SimulationJob

#: Poll cadence of the watchdog / chaos-recovery loop. Plain blocking
#: waits are used when neither a deadline nor chaos is configured.
_POLL_TICK_S = 0.1


@dataclass
class JobOutcome:
    """One job's result plus where it came from and what it cost.

    ``wall_time_s`` is the *cumulative* cost across every attempt this
    job needed (per-attempt costs in ``attempt_times``), so report
    wall-time accounting stays truthful under retries. A job that
    exhausted its retries carries ``result=None`` and a diagnostic
    ``error``; the rest of the grid is unaffected.
    """

    job: SimulationJob
    result: Optional[SessionResult]
    wall_time_s: float
    cached: bool = False
    attempts: int = 1
    attempt_times: Tuple[float, ...] = ()
    error: Optional[str] = None
    #: The result was reconstructed from a recorded event log rather
    #: than the result cache or a fresh simulation (see ``record_dir``).
    replayed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class EngineStats:
    """Recovery counters for one engine run (or one GridRunner's life)."""

    retried_jobs: int = 0  # jobs that succeeded only after a retry
    lost_attempts: int = 0  # attempts charged to crashes/hangs/raises
    watchdog_kills: int = 0  # attempts killed for running past deadline
    worker_crashes: int = 0  # attempts lost to a dead worker process
    job_failures: int = 0  # attempts that raised inside the job
    failed_jobs: int = 0  # jobs that exhausted every attempt
    pool_rebuilds: int = 0  # fresh pools after a break
    requeues: int = 0  # requeue events (charged and collateral)
    cache_resumes: int = 0  # retries satisfied by the cache re-check

    def any(self) -> bool:
        return any(value for value in vars(self).values())

    def as_dict(self) -> dict:
        return dict(vars(self))


def _execute(
    job: SimulationJob,
    attempt: int = 1,
    chaos=None,
    cache_root: Optional[str] = None,
    record_dir: Optional[str] = None,
) -> Tuple[SessionResult, float]:
    """Worker entry point: rebuild the cell from its spec and run it.

    Module-level (picklable) on purpose; the wall time measured here is
    the simulation cost alone, excluding queueing and transport. When a
    chaos schedule is active the injector runs first — it may kill this
    process, sleep past the deadline, raise, or tear a cache entry.

    With ``record_dir`` set, the session runs under an
    :class:`~repro.replay.EventRecorder` writing
    ``<record_dir>/<job key>.events.jsonl``. The recorder truncates on
    open, so a retried attempt rewrites the log — one log is always one
    attempt — and a chaos kill mid-run leaves a torn-but-replayable
    prefix.
    """
    if chaos is not None:
        from ..chaos.injector import inject

        inject(chaos, job.key(), attempt, cache_root)
    execute = getattr(job, "execute", None)
    if execute is not None:
        # Self-executing jobs (topology cohorts) own their whole run;
        # the engine only times them and hands through the record dir.
        started = time.perf_counter()
        result = execute(attempt=attempt, record_dir=record_dir)
        return result, time.perf_counter() - started
    from ..sim.session import simulate

    observer = None
    if record_dir is not None:
        from ..replay.recorder import EventRecorder, record_path

        observer = EventRecorder(
            record_path(record_dir, job.key()),
            extra_meta={
                "job": job.spec_dict(),
                "key": job.key(),
                "label": job.label(),
                "attempt": attempt,
            },
        )
    started = time.perf_counter()
    try:
        content, player, network, config = job.build(observer=observer)
        result = simulate(content, player, network, config)
    finally:
        if observer is not None:
            observer.close()  # idempotent: the session closes it on success
    return result, time.perf_counter() - started


def _replay_from_log(
    job: SimulationJob, record_dir: str
) -> Optional[SessionResult]:
    """A complete recorded log is a second cache: replay it if sound.

    Only an intact log (no tear, no corruption) whose verdict survived
    and whose embedded key matches the job is trusted; anything else
    returns ``None`` and the cell simulates fresh, overwriting the log.
    """
    if not isinstance(job, SimulationJob):
        return None  # only session logs replay; cohort logs are artifacts
    from ..replay.recorder import record_path
    from ..replay.replayer import replay_session

    path = record_path(record_dir, job.key())
    if not os.path.exists(path):
        return None
    try:
        replayed = replay_session(path)
    except Exception:
        return None  # damaged/foreign log: fall through to simulation
    if not replayed.intact or not replayed.has_verdict:
        return None
    if replayed.meta.get("key") != job.key():
        return None
    return replayed.result


class _JobState:
    """Per-job retry ledger while the grid is in flight."""

    __slots__ = ("attempts", "attempt_times", "last_error")

    def __init__(self):
        self.attempts = 0
        self.attempt_times: List[float] = []
        self.last_error: Optional[str] = None


def _pool_breaking(fault) -> bool:
    """Does this scheduled chaos fault take the whole pool down?"""
    from ..chaos.schedule import FaultKind

    return fault in (FaultKind.KILL, FaultKind.TRUNCATE)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> int:
    """SIGKILL every worker process (the watchdog's hammer).

    ``_processes`` is a private attribute, but it is the only handle
    the stdlib gives us on a hung worker; guarded so a layout change
    degrades to "no kill" rather than a crash.
    """
    processes = getattr(pool, "_processes", None) or {}
    killed = 0
    for process in list(processes.values()):
        try:
            process.kill()
            killed += 1
        except Exception:
            pass
    return killed


def run_jobs(
    jobs: Sequence[SimulationJob],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    chaos=None,
    stats: Optional[EngineStats] = None,
    record_dir: Optional[str] = None,
) -> List[JobOutcome]:
    """Run every job, returning outcomes in input order.

    Cache hits short-circuit before any worker is consulted; misses are
    simulated (in-process for ``workers<=1``, else on the pool) and
    written back *as they complete*, so an interrupted grid resumes
    from its completed prefix. ``timeout_s`` is the per-job wall-clock
    deadline (pool mode only — a single in-process attempt cannot be
    preempted); ``retries`` caps the extra attempts a crashed, hung or
    raising job is granted before it is surfaced as a failed outcome.
    """
    stats = stats if stats is not None else EngineStats()
    if chaos is not None and workers <= 1:
        raise ExperimentError(
            "chaos injection needs workers >= 2: its faults kill real "
            "worker processes, which the in-process serial path cannot survive"
        )
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending: deque = deque()
    for index, job in enumerate(jobs):
        if cache is not None:
            hit = cache.get(job.key())
            if hit is not None:
                outcomes[index] = JobOutcome(
                    job=job,
                    result=hit,
                    wall_time_s=0.0,
                    cached=True,
                    attempts=0,
                )
                continue
        if record_dir is not None:
            replayed = _replay_from_log(job, record_dir)
            if replayed is not None:
                outcomes[index] = JobOutcome(
                    job=job,
                    result=replayed,
                    wall_time_s=0.0,
                    cached=True,
                    attempts=0,
                    replayed=True,
                )
                if cache is not None:
                    cache.put(job.key(), replayed)
                continue
        pending.append(index)

    run_serial = workers <= 1 or (
        len(pending) <= 1 and chaos is None and timeout_s is None
    )
    if run_serial:
        # Legacy semantics on purpose: in-process execution, exceptions
        # propagate (the tier-1 suite runs here), KeyboardInterrupt
        # leaves the completed prefix checkpointed in the cache.
        for index in pending:
            result, wall = _execute(jobs[index], record_dir=record_dir)
            outcomes[index] = JobOutcome(
                jobs[index], result, wall, attempts=1, attempt_times=(wall,)
            )
            if cache is not None:
                cache.put(jobs[index].key(), result)
    elif pending:
        _run_pool(
            jobs,
            outcomes,
            pending,
            workers,
            cache,
            timeout_s,
            retries,
            chaos,
            stats,
            record_dir,
        )
    return [outcome for outcome in outcomes if outcome is not None]


def _run_pool(
    jobs: Sequence[SimulationJob],
    outcomes: List[Optional[JobOutcome]],
    queue: deque,
    workers: int,
    cache: Optional[ResultCache],
    timeout_s: Optional[float],
    retries: int,
    chaos,
    stats: EngineStats,
    record_dir: Optional[str] = None,
) -> None:
    """The hardened pool loop: submit-throttle, watchdog, requeue."""
    log_path = chaos.log_path if chaos is not None else None

    def _log(**event):
        if log_path:
            from ..chaos.injector import log_event

            log_event(log_path, **event)

    states: Dict[int, _JobState] = {index: _JobState() for index in queue}
    inflight: Dict[object, Tuple[int, float]] = {}  # future -> (index, started)
    condemned: set = set()  # futures killed by the watchdog
    pool: Optional[ProcessPoolExecutor] = None
    # Slow-start: a crashing job can re-break a fresh pool faster than
    # any co-scheduled work completes, so every attempt sharing a pool
    # with it is lost collateral and the grid stops checkpointing.
    # After a break, probe with a single job until something completes,
    # then reopen the full submit window.
    throttle = workers
    poll = timeout_s is not None or chaos is not None

    def _charge(index: int, elapsed: float, error: str) -> None:
        state = states[index]
        state.attempts += 1
        state.attempt_times.append(elapsed)
        state.last_error = error
        stats.lost_attempts += 1

    def _settle(index: int) -> None:
        """Requeue a charged job, or fail it once attempts run out."""
        state = states[index]
        if state.attempts <= retries:
            # Head of the queue: a retry has already paid for its slot,
            # and (under chaos) is the likeliest job to complete — so
            # it is the right probe for a freshly rebuilt pool.
            queue.appendleft(index)
            stats.requeues += 1
            _log(
                event="requeue",
                job=jobs[index].label(),
                attempt=state.attempts,
                error=state.last_error,
            )
        else:
            stats.failed_jobs += 1
            outcomes[index] = JobOutcome(
                job=jobs[index],
                result=None,
                wall_time_s=sum(state.attempt_times),
                attempts=state.attempts,
                attempt_times=tuple(state.attempt_times),
                error=state.last_error,
            )
            _log(
                event="job-failed",
                job=jobs[index].label(),
                attempts=state.attempts,
                error=state.last_error,
            )

    try:
        while queue or inflight:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
            # Submit-throttle: at most `workers` jobs in flight, so
            # every in-flight future is an executing attempt.
            pool_died_on_submit = False
            while queue and len(inflight) < throttle:
                index = queue.popleft()
                state = states[index]
                if cache is not None and state.attempts > 0:
                    # Another process (or a pre-crash write) may have
                    # finished this cell; a torn entry is evicted here.
                    hit = cache.get(jobs[index].key())
                    if hit is not None:
                        stats.cache_resumes += 1
                        outcomes[index] = JobOutcome(
                            job=jobs[index],
                            result=hit,
                            wall_time_s=sum(state.attempt_times),
                            cached=True,
                            attempts=state.attempts,
                            attempt_times=tuple(state.attempt_times),
                        )
                        continue
                try:
                    future = pool.submit(
                        _execute,
                        jobs[index],
                        state.attempts + 1,
                        chaos,
                        cache.root if cache is not None else None,
                        record_dir,
                    )
                except BrokenProcessPool:
                    queue.appendleft(index)
                    pool_died_on_submit = True
                    break
                inflight[future] = (index, time.monotonic())
            if pool_died_on_submit and not inflight:
                pool.shutdown(wait=False)
                pool = None
                stats.pool_rebuilds += 1
                throttle = 1
                continue
            if not inflight:
                continue  # everything left resolved from the cache

            done, _ = wait(
                set(inflight),
                timeout=_POLL_TICK_S if poll else None,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            broken = pool_died_on_submit
            for future in done:
                index, started = inflight.pop(future)
                state = states[index]
                attempt = state.attempts + 1
                try:
                    result, wall = future.result()
                except BrokenProcessPool:
                    broken = True
                    elapsed = now - started
                    if future in condemned:
                        _charge(
                            index,
                            elapsed,
                            f"deadline exceeded: attempt {attempt} ran past "
                            f"the {timeout_s:g}s wall-clock limit",
                        )
                        stats.watchdog_kills += 1
                        _settle(index)
                    elif chaos is not None and not _pool_breaking(
                        chaos.fault_for(jobs[index].key(), attempt)
                    ):
                        # The deterministic schedule names the guilty
                        # job; this one was an innocent bystander of a
                        # chaos kill — requeue it uncharged.
                        queue.appendleft(index)
                        stats.requeues += 1
                    else:
                        _charge(
                            index,
                            elapsed,
                            f"worker died on attempt {attempt}: process pool "
                            "broken (killed, segfaulted, or OOM)",
                        )
                        stats.worker_crashes += 1
                        _settle(index)
                except Exception as exc:
                    _charge(
                        index,
                        now - started,
                        f"attempt {attempt} raised "
                        f"{type(exc).__name__}: {exc}",
                    )
                    stats.job_failures += 1
                    _settle(index)
                else:
                    throttle = workers  # slow-start over: work completes
                    state.attempts = attempt
                    state.attempt_times.append(wall)
                    outcomes[index] = JobOutcome(
                        job=jobs[index],
                        result=result,
                        wall_time_s=sum(state.attempt_times),
                        attempts=state.attempts,
                        attempt_times=tuple(state.attempt_times),
                    )
                    if state.attempts > 1:
                        stats.retried_jobs += 1
                    if cache is not None:
                        # Checkpoint: stream the cell to disk now, so an
                        # interrupted grid resumes from here.
                        cache.put(jobs[index].key(), result)
                condemned.discard(future)

            # Watchdog: kill the pool when any attempt overruns its
            # deadline. SIGKILL takes every worker (the stdlib pool has
            # no per-worker kill), but only condemned jobs are charged;
            # collateral jobs requeue uncharged via the chaos/innocent
            # paths above (non-chaos runs charge them conservatively —
            # the culprit of a real crash cannot be identified).
            if timeout_s is not None and inflight and not broken:
                overdue = [
                    future
                    for future, (index, started) in inflight.items()
                    if now - started > timeout_s and future not in condemned
                ]
                if overdue:
                    for future in overdue:
                        condemned.add(future)
                        index, started = inflight[future]
                        _log(
                            event="watchdog-kill",
                            job=jobs[index].label(),
                            attempt=states[index].attempts + 1,
                            ran_s=round(now - started, 3),
                        )
                    _kill_pool_workers(pool)

            if broken:
                pool.shutdown(wait=False)
                pool = None
                stats.pool_rebuilds += 1
                throttle = 1
                _log(event="pool-rebuild")
    finally:
        if pool is not None:
            pool.shutdown(wait=False)


# -- session-global options -------------------------------------------------


@dataclass(frozen=True)
class RunnerOptions:
    """How grid experiments should execute in this session.

    ``workers=1`` and ``cache_dir=None`` (the defaults) reproduce the
    historical serial, uncached behaviour exactly — the tier-1 suite
    runs under these defaults. ``job_timeout_s``/``job_retries`` bound
    each job's wall clock and retry budget on the pool path; ``chaos``
    (a :class:`~repro.chaos.schedule.ChaosSchedule`) arms the fault
    injector.
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    job_timeout_s: Optional[float] = None
    job_retries: int = 2
    chaos: Optional[object] = None
    #: Directory for per-job event logs (``--record``): each cell's
    #: session streams to ``<record_dir>/<job key>.events.jsonl``, and
    #: intact logs double as a second cache (replay instead of re-run).
    record_dir: Optional[str] = None


_OPTIONS = RunnerOptions()


def get_runner_options() -> RunnerOptions:
    return _OPTIONS


def set_runner_options(
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    job_timeout_s: Optional[float] = None,
    job_retries: Optional[int] = None,
    chaos: Optional[object] = None,
    record_dir: Optional[str] = None,
) -> RunnerOptions:
    """Replace the session-global options; returns the new value."""
    global _OPTIONS
    changes: Dict[str, object] = {}
    if workers is not None:
        changes["workers"] = max(1, int(workers))
    changes["cache_dir"] = cache_dir
    changes["job_timeout_s"] = job_timeout_s
    if job_retries is not None:
        changes["job_retries"] = max(0, int(job_retries))
    changes["chaos"] = chaos
    changes["record_dir"] = record_dir
    # Session-global knobs by design: read in the parent at submit
    # time, never inside a worker (hence the waiver below).
    _OPTIONS = replace(_OPTIONS, **changes)  # lint: allow[POOL-GLOBAL-MUTABLE]
    return _OPTIONS


@contextmanager
def runner_options(
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    job_timeout_s: Optional[float] = None,
    job_retries: Optional[int] = None,
    chaos: Optional[object] = None,
    record_dir: Optional[str] = None,
) -> Iterator[RunnerOptions]:
    """Temporarily override the global options (the CLI uses this)."""
    global _OPTIONS
    previous = _OPTIONS
    try:
        yield set_runner_options(
            workers=workers,
            cache_dir=cache_dir,
            job_timeout_s=job_timeout_s,
            job_retries=job_retries,
            chaos=chaos,
            record_dir=record_dir,
        )
    finally:
        # Restores the parent-side session global on context-manager
        # exit (hence the waiver below).
        _OPTIONS = previous  # lint: allow[POOL-GLOBAL-MUTABLE]


class GridRunner:
    """Per-experiment facade over the engine and the global options.

    One instance per experiment run: it owns a fresh
    :class:`~repro.runner.cache.CacheStats` window (via its own
    :class:`ResultCache` handle) and a fresh :class:`EngineStats`
    ledger, so ``params()`` reports the cache and recovery behaviour
    of *this* experiment, not the whole process. When a chaos schedule
    is armed, every surviving result is swept by the session-invariant
    checker (:mod:`repro.chaos.invariants`) — a violation raises
    rather than letting a damaged row into a report.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        job_timeout_s: Optional[float] = None,
        job_retries: Optional[int] = None,
        chaos: Optional[object] = None,
        record_dir: Optional[str] = None,
    ):
        options = get_runner_options()
        self.workers = options.workers if workers is None else max(1, workers)
        directory = options.cache_dir if cache_dir is None else cache_dir
        self.cache = ResultCache(directory) if directory else None
        self.job_timeout_s = (
            options.job_timeout_s if job_timeout_s is None else job_timeout_s
        )
        self.job_retries = (
            options.job_retries if job_retries is None else max(0, job_retries)
        )
        self.chaos = options.chaos if chaos is None else chaos
        self.record_dir = options.record_dir if record_dir is None else record_dir
        self.stats = EngineStats()
        self._simulated = 0
        self._sim_wall_s = 0.0
        self._slowest_s = 0.0
        self._invariants_checked = 0
        self._replayed = 0

    def run(
        self, jobs: Sequence[SimulationJob], use_cache: bool = True
    ) -> List[JobOutcome]:
        """Run a grid; ``use_cache=False`` forces fresh simulation
        (used by determinism checks that must not compare a cached
        result against itself)."""
        cache = self.cache if use_cache else None
        outcomes = run_jobs(
            jobs,
            workers=self.workers,
            cache=cache,
            timeout_s=self.job_timeout_s,
            retries=self.job_retries,
            chaos=self.chaos,
            stats=self.stats,
            record_dir=self.record_dir if use_cache else None,
        )
        for outcome in outcomes:
            if outcome.replayed:
                self._replayed += 1
            if not outcome.cached and outcome.ok:
                self._simulated += 1
                self._sim_wall_s += outcome.wall_time_s
                self._slowest_s = max(self._slowest_s, outcome.wall_time_s)
        if self.chaos is not None:
            from ..chaos.invariants import check_outcomes

            self._invariants_checked += sum(
                1 for o in outcomes if o.result is not None
            )
            violations = check_outcomes(outcomes)
            if violations:
                shown = "; ".join(str(v) for v in violations[:5])
                raise SimulationError(
                    f"{len(violations)} session invariant violation(s) in "
                    f"chaos-surviving results: {shown}"
                )
        return outcomes

    def results(
        self, jobs: Sequence[SimulationJob], use_cache: bool = True
    ) -> List[SessionResult]:
        """Shorthand when only the session results matter.

        Experiments need complete grids: any job that exhausted its
        retries fails the whole call loudly rather than silently
        dropping a cell from the report.
        """
        outcomes = self.run(jobs, use_cache=use_cache)
        failed = [o for o in outcomes if not o.ok]
        if failed:
            first = failed[0]
            raise ExperimentError(
                f"{len(failed)}/{len(outcomes)} job(s) failed after "
                f"{first.attempts} attempt(s); first: "
                f"job {first.job.label()}: {first.error}"
            )
        return [outcome.result for outcome in outcomes]

    def params(self) -> dict:
        """Runner provenance for ``ExperimentReport.params``."""
        stats = {
            "workers": self.workers,
            "simulated": self._simulated,
            "sim_wall_s": round(self._sim_wall_s, 3),
            "slowest_job_s": round(self._slowest_s, 3),
        }
        if self.job_timeout_s is not None:
            stats["job_timeout_s"] = self.job_timeout_s
        if self.record_dir is not None:
            stats["record_dir"] = self.record_dir
            stats["replayed_from_log"] = self._replayed
        if self.chaos is not None:
            stats["chaos"] = self.chaos.spec()
            stats["job_retries"] = self.job_retries
            stats["invariants_checked"] = self._invariants_checked
        if self.stats.any():
            stats["recovery"] = self.stats.as_dict()
        if self.cache is not None:
            stats["cache"] = self.cache.stats.as_dict()
        return stats
