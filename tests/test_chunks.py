"""Chunk tables and VBR synthesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MediaError
from repro.media.chunks import (
    Chunk,
    ChunkTable,
    build_chunk_table,
    synthesize_vbr_bitrates,
)
from repro.media.tracks import audio_track, video_track


class TestSynthesis:
    def test_exact_mean(self):
        series = synthesize_vbr_bitrates(500, 900, 60, seed=1)
        assert sum(series) / len(series) == pytest.approx(500, rel=1e-9)

    def test_exact_peak_attained(self):
        series = synthesize_vbr_bitrates(500, 900, 60, seed=1)
        assert max(series) == pytest.approx(900, rel=1e-9)

    def test_peak_never_exceeded(self):
        series = synthesize_vbr_bitrates(500, 900, 60, seed=1)
        assert all(x <= 900 + 1e-9 for x in series)

    def test_all_positive(self):
        series = synthesize_vbr_bitrates(500, 900, 200, seed=7)
        assert all(x > 0 for x in series)

    def test_deterministic_given_seed(self):
        a = synthesize_vbr_bitrates(500, 900, 60, seed=42)
        b = synthesize_vbr_bitrates(500, 900, 60, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = synthesize_vbr_bitrates(500, 900, 60, seed=1)
        b = synthesize_vbr_bitrates(500, 900, 60, seed=2)
        assert a != b

    def test_cbr_when_peak_equals_avg(self):
        assert synthesize_vbr_bitrates(128, 128, 10, seed=1) == [128] * 10

    def test_zero_burstiness_gives_cbr(self):
        series = synthesize_vbr_bitrates(500, 900, 10, seed=1, burstiness=0)
        assert series == [500] * 10

    def test_single_chunk_is_mean(self):
        assert synthesize_vbr_bitrates(500, 900, 1, seed=1) == [500]

    def test_tight_headroom_still_exact(self):
        # Table 1's V1: avg 111, peak 119 — only 7% headroom.
        series = synthesize_vbr_bitrates(111, 119, 60, seed=3, burstiness=0.04)
        assert sum(series) / 60 == pytest.approx(111, rel=1e-9)
        assert max(series) == pytest.approx(119, rel=1e-9)

    def test_invalid_n_chunks(self):
        with pytest.raises(MediaError):
            synthesize_vbr_bitrates(500, 900, 0, seed=1)

    def test_peak_below_avg_rejected(self):
        with pytest.raises(MediaError):
            synthesize_vbr_bitrates(900, 500, 10, seed=1)

    @settings(max_examples=40, deadline=None)
    @given(
        avg=st.floats(min_value=32, max_value=4000),
        ratio=st.floats(min_value=1.0, max_value=2.5),
        n=st.integers(min_value=2, max_value=120),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_mean_and_bounds(self, avg, ratio, n, seed):
        peak = avg * ratio
        series = synthesize_vbr_bitrates(avg, peak, n, seed=seed)
        assert sum(series) / n == pytest.approx(avg, rel=1e-6)
        assert max(series) <= peak + 1e-6
        assert min(series) > 0


class TestChunk:
    def test_bitrate_and_bytes(self):
        chunk = Chunk(track_id="V1", index=0, duration_s=5.0, size_bits=500_000.0)
        assert chunk.bitrate_kbps == pytest.approx(100.0)
        assert chunk.size_bytes == pytest.approx(62_500.0)


class TestChunkTable:
    def _table(self):
        return ChunkTable(5.0, {"V1": [500_000.0, 600_000.0], "A1": [80_000.0, 80_000.0]})

    def test_dimensions(self):
        table = self._table()
        assert table.n_chunks == 2
        assert table.duration_s == 5.0
        assert table.total_duration_s == 10.0
        assert set(table.track_ids) == {"V1", "A1"}

    def test_chunk_lookup(self):
        chunk = self._table().chunk("V1", 1)
        assert chunk.size_bits == 600_000.0
        assert chunk.index == 1

    def test_out_of_range_index(self):
        with pytest.raises(MediaError):
            self._table().chunk("V1", 2)

    def test_unknown_track(self):
        with pytest.raises(MediaError):
            self._table().sizes("V9")

    def test_measured_stats(self):
        table = self._table()
        assert table.measured_avg_kbps("V1") == pytest.approx(110.0)
        assert table.measured_peak_kbps("V1") == pytest.approx(120.0)

    def test_total_bits(self):
        assert self._table().total_bits("A1") == pytest.approx(160_000.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MediaError):
            ChunkTable(5.0, {"V1": [1.0, 2.0], "A1": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(MediaError):
            ChunkTable(5.0, {})

    def test_nonpositive_size_rejected(self):
        with pytest.raises(MediaError):
            ChunkTable(5.0, {"V1": [0.0]})

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(MediaError):
            ChunkTable(0.0, {"V1": [1.0]})


class TestBuildChunkTable:
    def test_tracks_match_published_stats(self):
        tracks = [
            video_track("V3", 362, 641, 473),
            audio_track("A1", 128, 134),
        ]
        table = build_chunk_table(tracks, duration_s=5.0, n_chunks=60)
        for track in tracks:
            assert table.measured_avg_kbps(track.track_id) == pytest.approx(
                track.avg_kbps, rel=1e-9
            )
            assert table.measured_peak_kbps(track.track_id) == pytest.approx(
                track.peak_kbps, rel=1e-9
            )

    def test_adding_track_does_not_perturb_existing(self):
        v3 = video_track("V3", 362, 641, 473)
        a1 = audio_track("A1", 128, 134)
        alone = build_chunk_table([v3], duration_s=5.0, n_chunks=60)
        joined = build_chunk_table([v3, a1], duration_s=5.0, n_chunks=60)
        assert alone.sizes("V3") == joined.sizes("V3")

    def test_cross_process_determinism_uses_stable_hash(self):
        # zlib.crc32-based seeding must give the same table regardless of
        # PYTHONHASHSEED; identical rebuilds must match bit-for-bit.
        v3 = video_track("V3", 362, 641, 473)
        a = build_chunk_table([v3], duration_s=5.0, n_chunks=60, seed=9)
        b = build_chunk_table([v3], duration_s=5.0, n_chunks=60, seed=9)
        assert a.sizes("V3") == b.sizes("V3")
