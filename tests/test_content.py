"""Content model and the Table-1 reference title."""

import pytest

from repro.errors import MediaError
from repro.media.content import (
    TABLE1_AUDIO,
    TABLE1_VIDEO,
    Content,
    b_audio_ladder,
    c_audio_ladder,
    drama_show,
    synthetic_content,
    table1_audio_ladder,
    table1_video_ladder,
)
from repro.media.tracks import MediaType


class TestTable1Ladders:
    def test_video_ladder_matches_paper(self):
        ladder = table1_video_ladder()
        assert ladder.track_ids == ("V1", "V2", "V3", "V4", "V5", "V6")
        for (tid, avg, peak, declared, height), track in zip(TABLE1_VIDEO, ladder):
            assert track.track_id == tid
            assert track.avg_kbps == avg
            assert track.peak_kbps == peak
            assert track.declared_kbps == declared
            assert track.height == height

    def test_audio_ladder_matches_paper(self):
        ladder = table1_audio_ladder()
        assert ladder.track_ids == ("A1", "A2", "A3")
        for (tid, avg, peak, declared, channels, khz), track in zip(
            TABLE1_AUDIO, ladder
        ):
            assert (track.avg_kbps, track.peak_kbps, track.declared_kbps) == (
                avg,
                peak,
                declared,
            )
            assert track.channels == channels
            assert track.sampling_khz == khz

    def test_v3_declared_sits_between_avg_and_peak(self):
        # The VBR effect Table 1 illustrates.
        v3 = table1_video_ladder().by_id("V3")
        assert v3.avg_kbps < v3.declared_kbps < v3.peak_kbps

    def test_b_ladder(self):
        ladder = b_audio_ladder()
        assert [t.declared_kbps for t in ladder] == [32, 64, 128]

    def test_c_ladder(self):
        ladder = c_audio_ladder()
        assert [t.declared_kbps for t in ladder] == [196, 384, 768]

    def test_audio_can_exceed_low_video_rungs(self):
        # The paper's core premise: A3 (384) > V1 (111) and V2 (246).
        audio = table1_audio_ladder()
        video = table1_video_ladder()
        assert audio.highest.avg_kbps > video[0].avg_kbps
        assert audio.highest.avg_kbps > video[1].avg_kbps


class TestDramaShow:
    def test_duration_is_five_minutes(self, content):
        assert content.duration_s == 300.0
        assert content.n_chunks == 60
        assert content.chunk_duration_s == 5.0

    def test_track_lookup_both_media(self, content):
        assert content.track("V4").is_video
        assert content.track("A2").is_audio

    def test_track_lookup_missing(self, content):
        with pytest.raises(MediaError):
            content.track("X1")

    def test_chunk_lookup(self, content):
        chunk = content.chunk("V1", 0)
        assert chunk.duration_s == 5.0
        assert chunk.size_bits > 0

    def test_ladder_accessor(self, content):
        assert content.ladder(MediaType.VIDEO) is content.video
        assert content.ladder(MediaType.AUDIO) is content.audio

    def test_deterministic(self):
        a, b = drama_show(seed=5), drama_show(seed=5)
        for track_id in a.chunk_table.track_ids:
            assert a.chunk_table.sizes(track_id) == b.chunk_table.sizes(track_id)

    def test_chunk_sizes_realize_table1_stats(self, content):
        for track in list(content.video) + list(content.audio):
            measured_avg = content.chunk_table.measured_avg_kbps(track.track_id)
            measured_peak = content.chunk_table.measured_peak_kbps(track.track_id)
            assert measured_avg == pytest.approx(track.avg_kbps, rel=1e-9)
            assert measured_peak == pytest.approx(track.peak_kbps, rel=1e-9)


class TestWithAudio:
    def test_swaps_audio_ladder(self, content):
        swapped = content.with_audio(b_audio_ladder())
        assert swapped.audio.track_ids == ("B1", "B2", "B3")
        assert swapped.video.track_ids == content.video.track_ids

    def test_video_chunks_preserved(self, content):
        swapped = content.with_audio(c_audio_ladder())
        for track in content.video:
            assert swapped.chunk_table.sizes(track.track_id) == content.chunk_table.sizes(
                track.track_id
            )

    def test_new_audio_has_chunks(self, content):
        swapped = content.with_audio(b_audio_ladder())
        assert swapped.chunk_table.measured_avg_kbps("B2") == pytest.approx(
            64, rel=1e-9
        )


class TestStorage:
    def test_demuxed_is_sum_of_tracks(self, content):
        expected = sum(
            content.chunk_table.total_bits(t.track_id)
            for t in list(content.video) + list(content.audio)
        )
        assert content.storage_bits_demuxed() == pytest.approx(expected)

    def test_muxed_stores_every_combination(self, content):
        # M x N combinations: every video stored N times, every audio M times.
        m, n = len(content.video), len(content.audio)
        video_bits = sum(content.chunk_table.total_bits(t.track_id) for t in content.video)
        audio_bits = sum(content.chunk_table.total_bits(t.track_id) for t in content.audio)
        assert content.storage_bits_muxed() == pytest.approx(
            video_bits * n + audio_bits * m
        )

    def test_muxed_larger_than_demuxed(self, content):
        assert content.storage_bits_muxed() > content.storage_bits_demuxed() * 2


class TestSyntheticContent:
    def test_basic(self):
        synthetic = synthetic_content("test", [100, 200], [48, 96], n_chunks=10)
        assert synthetic.video.track_ids == ("V1", "V2")
        assert synthetic.audio.track_ids == ("A1", "A2")
        assert synthetic.n_chunks == 10

    def test_bitrates_sorted(self):
        synthetic = synthetic_content("test", [300, 100], [96, 48], n_chunks=4)
        assert synthetic.video[0].avg_kbps == 100
        assert synthetic.audio[0].avg_kbps == 48

    def test_peak_factor(self):
        synthetic = synthetic_content(
            "test", [100], [48], n_chunks=4, video_peak_factor=2.0
        )
        assert synthetic.video[0].peak_kbps == 200

    def test_empty_rejected(self):
        with pytest.raises(MediaError):
            synthetic_content("test", [], [48])


class TestContentValidation:
    def test_missing_chunk_track_rejected(self, content):
        limited = {
            t.track_id: content.chunk_table.sizes(t.track_id) for t in content.video
        }
        from repro.media.chunks import ChunkTable

        table = ChunkTable(5.0, limited)
        with pytest.raises(MediaError):
            Content(
                name="broken",
                video=content.video,
                audio=content.audio,
                chunk_table=table,
            )

    def test_swapped_ladders_rejected(self, content):
        with pytest.raises(MediaError):
            Content(
                name="broken",
                video=content.audio,
                audio=content.video,
                chunk_table=content.chunk_table,
            )
