"""Muxed-delivery modelling."""

import pytest

from repro.core.combinations import all_combinations, hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import MediaError
from repro.media.muxed import (
    MUX_MARKER_ID,
    demux_ids,
    muxed_content,
    muxed_track_id,
)
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.sim.session import simulate

V = MediaType.VIDEO


class TestIds:
    def test_roundtrip(self):
        assert demux_ids(muxed_track_id("V3", "A2")) == ("V3", "A2")

    def test_bad_id_rejected(self):
        with pytest.raises(MediaError):
            demux_ids("V3")


class TestMuxedContent:
    def test_variant_ladder(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        assert len(muxed.video) == 6
        assert muxed.video.track_ids == tuple(
            name for name in hsub_combos.names
        )

    def test_marker_audio(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        assert muxed.audio.track_ids == (MUX_MARKER_ID,)
        marker_bits = muxed.chunk_table.total_bits(MUX_MARKER_ID)
        video_bits = muxed.chunk_table.total_bits("V1+A1")
        assert marker_bits < video_bits / 1000.0

    def test_chunk_sizes_are_sums(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        for index in range(content.n_chunks):
            combined = muxed.chunk("V3+A2", index).size_bits
            expected = (
                content.chunk("V3", index).size_bits
                + content.chunk("A2", index).size_bits
            )
            assert combined == pytest.approx(expected)

    def test_variant_bitrates_are_aggregates(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        track = muxed.video.by_id("V4+A2")
        combo = hsub_combos.by_name("V4+A2")
        assert track.avg_kbps == combo.avg_kbps
        assert track.peak_kbps == combo.peak_kbps
        assert track.declared_kbps == combo.declared_kbps

    def test_defaults_to_all_combinations(self, content):
        muxed = muxed_content(content)
        assert len(muxed.video) == 18


class TestMuxedPlayback:
    def test_streams_through_standard_simulator(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        player = RecommendedPlayer(all_combinations(muxed))
        result = simulate(muxed, player, shared(constant(1000.0)))
        assert result.completed
        assert result.n_stalls == 0

    def test_matches_demuxed_delivery(self, content, hsub_combos):
        """Same logic, same link: the packaging must not change what is
        delivered (the bytes are the same bytes)."""
        demuxed_result = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(1000.0))
        )
        muxed = muxed_content(content, combinations=hsub_combos)
        muxed_result = simulate(
            muxed,
            RecommendedPlayer(all_combinations(muxed)),
            shared(constant(1000.0)),
        )
        demuxed_total = demuxed_result.time_weighted_bitrate_kbps(
            V
        ) + demuxed_result.time_weighted_bitrate_kbps(MediaType.AUDIO)
        muxed_total = muxed_result.time_weighted_bitrate_kbps(V)
        assert muxed_total == pytest.approx(demuxed_total, rel=0.05)

    def test_selection_pairs_recoverable(self, content, hsub_combos):
        muxed = muxed_content(content, combinations=hsub_combos)
        player = RecommendedPlayer(all_combinations(muxed))
        result = simulate(muxed, player, shared(constant(1000.0)))
        for _, track_id, _ in result.selected_combinations():
            video_id, audio_id = demux_ids(track_id)
            assert f"{video_id}+{audio_id}" in set(hsub_combos.names)
