"""The best-practices player (Section 4.2 realized)."""

import pytest

from repro.core.combinations import all_combinations, hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import PlayerError
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant, from_pairs
from repro.qoe.metrics import compute_qoe
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestValidation:
    def test_safety_factor(self, hsub_combos):
        with pytest.raises(PlayerError):
            RecommendedPlayer(hsub_combos, safety_factor=0)

    def test_up_patience(self, hsub_combos):
        with pytest.raises(PlayerError):
            RecommendedPlayer(hsub_combos, up_patience=0)

    def test_rate_key(self, hsub_combos):
        with pytest.raises(PlayerError):
            RecommendedPlayer(hsub_combos, rate_key="p99")


class TestPracticeConformance:
    def test_only_allowed_combinations(self, content, hsub_combos):
        """Practice 2: never leave the server-allowed set."""
        for kbps in (300.0, 700.0, 1500.0, 5000.0):
            player = RecommendedPlayer(hsub_combos)
            result = simulate(content, player, shared(constant(kbps)))
            assert set(result.combination_names()) <= set(hsub_combos.names), kbps

    def test_audio_adapts_with_bandwidth(self, content, hsub_combos):
        """Practice 1: audio quality follows available bandwidth."""
        low = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(400.0))
        )
        high = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(5000.0))
        )
        assert low.time_weighted_bitrate_kbps(A) < high.time_weighted_bitrate_kbps(A)
        assert "A3" in high.track_usage(A)

    def test_joint_positions_always_paired(self, content, hsub_combos):
        """Practice 3: one joint decision per chunk position."""
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        for _, video_id, audio_id in result.selected_combinations():
            assert f"{video_id}+{audio_id}" in set(hsub_combos.names)

    def test_balanced_buffers(self, content, hsub_combos):
        """Practice 4: frontier gap capped at one chunk."""
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6

    def test_cold_start_at_lowest(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(5000.0)))
        assert result.combination_names()[0] == "V1+A1"


class TestAdaptationQuality:
    def test_steady_state_at_900(self, content, hsub_combos):
        # Budget 0.85 x ~900 = 765 -> highest avg <= 765 is V3+A2 (558).
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.combination_names()[-1] == "V3+A2"

    def test_no_stalls_on_steady_links(self, content, hsub_combos):
        for kbps in (400.0, 700.0, 1200.0, 3000.0):
            player = RecommendedPlayer(hsub_combos)
            result = simulate(content, player, shared(constant(kbps)))
            assert result.n_stalls == 0, kbps

    def test_switch_damping_limits_changes(self, content, hsub_combos):
        # A link oscillating around a rung boundary: damping holds the
        # selection mostly steady.
        trace = from_pairs([(10, 800), (10, 1000)])
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(trace))
        assert result.switch_count(V) + result.switch_count(A) <= 6

    def test_downswitch_on_bandwidth_drop(self, content, hsub_combos):
        trace = from_pairs([(60, 2000.0), (300, 300.0)], loop=False)
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(trace))
        names = result.combination_names()
        assert names[-1] in ("V1+A1", "V2+A1")
        # And the drop did not wreck playback.
        assert result.total_rebuffer_s < 10.0

    def test_estimates_logged(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.estimate_timeline
        final = result.estimate_timeline[-1].kbps
        assert final == pytest.approx(900.0, rel=0.1)


class TestAblationFlags:
    def test_unbalanced_mode_allows_drift(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos, balanced=False, buffer_target_s=30.0)
        result = simulate(content, player, shared(constant(700.0)))
        balanced = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(700.0))
        )
        assert result.max_buffer_imbalance_s() > balanced.max_buffer_imbalance_s()

    def test_split_meter_underestimates(self, content, hsub_combos):
        split = RecommendedPlayer(hsub_combos, shared_meter=False)
        split_result = simulate(content, split, shared(constant(1000.0)))
        pooled = RecommendedPlayer(hsub_combos)
        pooled_result = simulate(content, pooled, shared(constant(1000.0)))
        assert pooled_result.time_weighted_bitrate_kbps(V) >= (
            split_result.time_weighted_bitrate_kbps(V)
        )

    def test_all_combinations_mode_widens_choice(self, content):
        player = RecommendedPlayer(all_combinations(content))
        result = simulate(content, player, shared(constant(700.0)))
        assert set(result.combination_names()) <= set(
            all_combinations(content).names
        )

    def test_max_lead_chunks_honoured(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos, max_lead_chunks=3)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.max_buffer_imbalance_s() <= 3 * content.chunk_duration_s + 1e-6

    def test_rate_key_peak_is_more_conservative(self, content, hsub_combos):
        avg_player = RecommendedPlayer(hsub_combos, rate_key="avg")
        peak_player = RecommendedPlayer(hsub_combos, rate_key="peak")
        avg_result = simulate(content, avg_player, shared(constant(900.0)))
        peak_result = simulate(content, peak_player, shared(constant(900.0)))
        assert peak_result.time_weighted_bitrate_kbps(V) <= (
            avg_result.time_weighted_bitrate_kbps(V)
        )


class TestQoEDominance:
    def test_beats_fixed_worst_case_pairing(self, content, hsub_combos):
        from repro.players.fixed import FixedTracksPlayer

        recommended = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(700.0))
        )
        fixed = simulate(
            content, FixedTracksPlayer("V1", "A3"), shared(constant(700.0))
        )
        assert (
            compute_qoe(recommended, content).score
            > compute_qoe(fixed, content).score
        )
