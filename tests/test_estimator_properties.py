"""Property-based estimator invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.media.tracks import MediaType
from repro.players.estimators import (
    Ewma,
    ExoBandwidthMeter,
    HarmonicMeanEstimator,
    ShakaEstimator,
    SharedThroughputEstimator,
    SlidingPercentile,
)
from repro.sim.records import DownloadRecord, ProgressSegment


def record_at(kbps, duration_s, started_at=0.0):
    bits = kbps * 1000.0 * duration_s
    return DownloadRecord(
        medium=MediaType.VIDEO,
        track_id="V1",
        chunk_index=0,
        size_bits=bits,
        started_at=started_at,
        completed_at=started_at + duration_s,
        segments=(
            ProgressSegment(
                start_s=started_at, end_s=started_at + duration_s, bits=bits
            ),
        ),
    )


rates = st.lists(
    st.floats(min_value=10.0, max_value=50_000.0), min_size=1, max_size=25
)


class TestEwmaProperties:
    @settings(max_examples=40, deadline=None)
    @given(values=rates)
    def test_estimate_within_sample_range(self, values):
        ewma = Ewma(half_life_s=2.0)
        for value in values:
            ewma.sample(1.0, value)
        assert min(values) - 1e-6 <= ewma.get_estimate() <= max(values) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        values=rates,
        half_life=st.floats(min_value=0.1, max_value=30.0),
    )
    def test_total_weight_accumulates(self, values, half_life):
        ewma = Ewma(half_life_s=half_life)
        for value in values:
            ewma.sample(0.5, value)
        assert ewma.total_weight_s == pytest.approx(0.5 * len(values))


class TestSlidingPercentileProperties:
    @settings(max_examples=40, deadline=None)
    @given(values=rates)
    def test_percentile_is_one_of_the_samples(self, values):
        percentile = SlidingPercentile(max_weight=1e9)
        for value in values:
            percentile.add_sample(1.0, value)
        assert percentile.get_percentile() in values

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.floats(min_value=10, max_value=1e4), min_size=3, max_size=25))
    def test_median_between_extremes(self, values):
        percentile = SlidingPercentile(max_weight=1e9)
        for value in values:
            percentile.add_sample(1.0, value)
        estimate = percentile.get_percentile()
        assert min(values) <= estimate <= max(values)


class TestHarmonicProperties:
    @settings(max_examples=40, deadline=None)
    @given(values=rates)
    def test_harmonic_never_exceeds_arithmetic(self, values):
        estimator = HarmonicMeanEstimator(window=len(values))
        for value in values:
            estimator.add_sample_kbps(value)
        arithmetic = sum(values) / len(values)
        assert estimator.get_estimate_kbps() <= arithmetic + 1e-6


class TestShakaProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        kbps=st.floats(min_value=1100.0, max_value=20_000.0),
        duration=st.floats(min_value=2.0, max_value=10.0),
    )
    def test_constant_fast_stream_estimates_its_rate(self, kbps, duration):
        estimator = ShakaEstimator()
        estimator.observe_download(record_at(kbps, duration))
        if estimator.has_good_estimate:
            # A trailing partial interval is scored as a full delta
            # (that is how interval sampling works), so the estimate
            # can read a few percent low on short downloads.
            assert estimator.get_estimate_kbps() == pytest.approx(kbps, rel=0.06)
        else:
            assert estimator.get_estimate_kbps() == 500.0

    @settings(max_examples=25, deadline=None)
    @given(kbps=st.floats(min_value=10.0, max_value=1020.0))
    def test_sub_threshold_streams_never_unpin(self, kbps):
        """Anything at or below ~1024 kbps per stream can never produce
        a valid 16 KB interval — the Fig. 4(a) dead zone, as a law."""
        estimator = ShakaEstimator()
        for start in range(5):
            estimator.observe_download(
                record_at(kbps, 5.0, started_at=start * 6.0)
            )
        assert estimator.valid_samples == 0
        assert estimator.get_estimate_kbps() == 500.0


class TestPooledProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        kbps=st.floats(min_value=50.0, max_value=10_000.0),
        n=st.integers(min_value=1, max_value=6),
    )
    def test_sequential_constant_rate_recovered(self, kbps, n):
        estimator = SharedThroughputEstimator()
        for i in range(n):
            estimator.observe_download(record_at(kbps, 1.0, started_at=float(i)))
        assert estimator.get_estimate_kbps() == pytest.approx(kbps, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(share=st.floats(min_value=50.0, max_value=5_000.0))
    def test_two_equal_concurrent_streams_sum(self, share):
        estimator = SharedThroughputEstimator()
        estimator.observe_download(record_at(share, 2.0))
        audio = DownloadRecord(
            medium=MediaType.AUDIO,
            track_id="A1",
            chunk_index=0,
            size_bits=share * 1000.0 * 2.0,
            started_at=0.0,
            completed_at=2.0,
            segments=(ProgressSegment(start_s=0.0, end_s=2.0, bits=share * 2000.0),),
        )
        estimator.observe_download(audio)
        assert estimator.get_estimate_kbps() == pytest.approx(2 * share, rel=1e-6)


class TestExoMeterProperties:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(min_value=50, max_value=1e4), min_size=1, max_size=15))
    def test_estimate_within_transfer_range(self, values):
        meter = ExoBandwidthMeter()
        for i, kbps in enumerate(values):
            meter.observe_download(record_at(kbps, 1.0, started_at=float(i)))
        estimate = meter.get_estimate_kbps()
        assert min(values) - 1e-6 <= estimate <= max(values) + 1e-6
