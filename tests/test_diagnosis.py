"""Automatic pathology diagnosis — each player's session must yield the
pathology the paper attributes to it."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.experiments.traces import fig3_trace, fig4b_trace
from repro.manifest.packager import package_dash, package_hls
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.dashjs import DashJsPlayer
from repro.players.exoplayer import ExoPlayerHls
from repro.players.fixed import FixedTracksPlayer
from repro.players.shaka import ShakaPlayer
from repro.qoe.diagnosis import DiagnosisThresholds, Pathology, diagnose
from repro.sim.session import simulate


def pathologies(result, content):
    return {d.pathology for d in diagnose(result, content)}


class TestPaperScenarioDiagnoses:
    def test_exoplayer_hls_diagnosed_with_fixed_audio(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            audio_order=["A3", "A2", "A1"],
        )
        result = simulate(content, ExoPlayerHls(package.master), shared(fig3_trace()))
        found = pathologies(result, content)
        assert Pathology.FIXED_AUDIO in found
        assert Pathology.REBUFFERING in found
        assert Pathology.UNDESIRABLE_PAIRS in found  # V1/V2 + A3 throughout

    def test_shaka_fig4a_diagnosed_with_pinned_estimator(self, content, hls_all):
        result = simulate(
            content, ShakaPlayer.from_hls(hls_all.master), shared(constant(1000.0))
        )
        found = pathologies(result, content)
        assert Pathology.ESTIMATOR_PINNED in found

    def test_shaka_fig4b_diagnosed_with_overshoot(self, content, hls_all):
        result = simulate(
            content, ShakaPlayer.from_hls(hls_all.master), shared(fig4b_trace())
        )
        found = pathologies(result, content)
        assert Pathology.ESTIMATE_OVERSHOOT in found
        assert Pathology.REBUFFERING in found

    def test_dashjs_fig5_diagnosed_with_imbalance_and_pairs(self, content, dash_manifest):
        result = simulate(
            content, DashJsPlayer(dash_manifest), shared(constant(700.0))
        )
        found = pathologies(result, content)
        assert Pathology.BUFFER_IMBALANCE in found
        assert Pathology.UNDESIRABLE_PAIRS in found
        assert Pathology.FREQUENT_SWITCHING in found

    def test_recommended_player_is_clean(self, content, hsub_combos):
        result = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(900.0))
        )
        assert diagnose(result, content) == []


class TestIndividualDetectors:
    def test_fixed_audio_not_flagged_for_single_rung_ladder(self):
        from repro.media.content import synthetic_content

        single = synthetic_content("single", [100, 300], [64], n_chunks=6)
        result = simulate(
            single, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0))
        )
        assert Pathology.FIXED_AUDIO not in pathologies(result, single)

    def test_fully_fixed_pair_not_misdiagnosed_as_fixed_audio(self, content):
        # Nothing adapted, so there is no evidence of *missing audio
        # logic* specifically — the detector requires video adaptation.
        result = simulate(
            content, FixedTracksPlayer("V3", "A2"), shared(constant(2000.0))
        )
        found = pathologies(result, content)
        assert Pathology.FIXED_AUDIO not in found
        assert Pathology.UNDESIRABLE_PAIRS not in found  # V3+A2 matches

    def test_undesirable_fixed_pair_flagged(self, content):
        result = simulate(
            content, FixedTracksPlayer("V6", "A1"), shared(constant(8000.0))
        )
        found = pathologies(result, content)
        assert Pathology.UNDESIRABLE_PAIRS in found

    def test_no_rebuffering_flag_on_smooth_session(self, content, hsub_combos):
        result = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(2000.0))
        )
        assert Pathology.REBUFFERING not in pathologies(result, content)

    def test_severity_ordering(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            audio_order=["A3", "A2", "A1"],
        )
        result = simulate(content, ExoPlayerHls(package.master), shared(fig3_trace()))
        findings = diagnose(result, content)
        severities = [d.severity for d in findings]
        assert severities == sorted(severities, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in severities)

    def test_evidence_strings_are_informative(self, content, hls_all):
        result = simulate(
            content, ShakaPlayer.from_hls(hls_all.master), shared(constant(1000.0))
        )
        findings = diagnose(result, content)
        pinned = next(
            d for d in findings if d.pathology is Pathology.ESTIMATOR_PINNED
        )
        assert "500" in pinned.evidence

    def test_thresholds_tunable(self, content, dash_manifest):
        result = simulate(
            content, DashJsPlayer(dash_manifest), shared(constant(700.0))
        )
        lax = DiagnosisThresholds(
            imbalance_chunks=100.0,
            switches_per_minute=1000.0,
            undesirable_fraction=1.1,
        )
        found = {d.pathology for d in diagnose(result, content, lax)}
        assert Pathology.BUFFER_IMBALANCE not in found
        assert Pathology.FREQUENT_SWITCHING not in found
        assert Pathology.UNDESIRABLE_PAIRS not in found
