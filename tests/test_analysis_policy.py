"""The POLICY-* player-contract family: the signature table is pinned
to the real BasePlayer, convictions travel across modules through the
program index, and the shipped players hold the contract."""

import inspect
from pathlib import Path

from repro.analysis import AnalyzerConfig, analyze_files, analyze_text
from repro.analysis.code_policy import (
    HOOK_SIGNATURES,
    INHERIT_FAILURE_MARK,
    PLAYER_HOOKS,
)
from repro.analysis.parallel import analyze_files_parallel
from repro.players.base import BasePlayer

REPO_ROOT = Path(__file__).parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

POLICY_RULES = frozenset(
    {
        "POLICY-DECISION-TYPE",
        "POLICY-NONDETERMINISM",
        "POLICY-HOOK-MUTATION",
        "POLICY-MISSING-FAILURE-HOOK",
        "POLICY-HOOK-SIGNATURE",
    }
)


def rules(findings):
    return {f.rule for f in findings}


class TestSignatureTablePinned:
    def test_hook_signatures_match_the_real_baseplayer(self):
        """The lint's signature table cannot silently drift from the
        class it polices."""
        for hook, expected in HOOK_SIGNATURES.items():
            actual = tuple(
                inspect.signature(getattr(BasePlayer, hook)).parameters
            )
            assert actual == expected, hook

    def test_every_signature_hook_is_a_declared_lifecycle_hook(self):
        assert set(HOOK_SIGNATURES) <= PLAYER_HOOKS
        # __init__ is a lifecycle hook (mutation is legal there) but
        # its signature is the subclass's own business.
        assert PLAYER_HOOKS - set(HOOK_SIGNATURES) == {"__init__"}

    def test_declared_hooks_exist_on_baseplayer(self):
        for hook in PLAYER_HOOKS:
            assert hasattr(BasePlayer, hook), hook


class TestCrossModuleConviction:
    PLAYER = (
        "from repro.players.base import BasePlayer\n"
        "from helpers import pick_track\n"
        "from repro.sim.decisions import download_for\n"
        "\n"
        "\n"
        "class RemotePlayer(BasePlayer):\n"
        "    def choose_next(self, medium, ctx):\n"
        "        return download_for(pick_track())\n"
        "\n"
        "    def on_failure(self, medium, failure, ctx):\n"
        "        return None\n"
    )

    def test_impure_helper_in_another_module_convicts(self):
        helpers = (
            "import random\n"
            "\n"
            "\n"
            "def pick_track():\n"
            "    return roll()\n"
            "\n"
            "\n"
            "def roll():\n"
            "    return random.random()  # lint: allow[DET-UNSEEDED-RANDOM]\n"
        )
        findings = analyze_files(
            {"player.py": self.PLAYER, "helpers.py": helpers}
        )
        policy = [f for f in findings if f.rule in POLICY_RULES]
        assert [f.rule for f in policy] == ["POLICY-NONDETERMINISM"]
        assert policy[0].span.file == "player.py"
        # The conviction names the helper two calls away.
        assert "roll()" in policy[0].message

    def test_pure_helper_chain_is_silent(self):
        helpers = (
            "def pick_track():\n"
            "    return choose()\n"
            "\n"
            "\n"
            "def choose():\n"
            '    return "V1"\n'
        )
        findings = analyze_files(
            {"player.py": self.PLAYER, "helpers.py": helpers}
        )
        assert not rules(findings) & POLICY_RULES

    def test_indirect_subclass_through_other_module_is_checked(self):
        """A player two inheritance hops from BasePlayer, with the
        intermediate class in a different file, is still policed."""
        base_mod = (
            "from repro.players.base import BasePlayer\n"
            "\n"
            "\n"
            "class IntermediatePlayer(BasePlayer):\n"
            "    def on_failure(self, medium, failure, ctx):\n"
            "        return None\n"
        )
        leaf_mod = (
            "from intermediate import IntermediatePlayer\n"
            "\n"
            "\n"
            "class LeafPlayer(IntermediatePlayer):\n"
            "    def choose_next(self, medium, ctx):\n"
            "        return 42\n"
        )
        findings = analyze_files(
            {"intermediate.py": base_mod, "leaf.py": leaf_mod}
        )
        policy = [f for f in findings if f.rule in POLICY_RULES]
        # DECISION-TYPE fires on the raw return; MISSING-FAILURE-HOOK
        # must NOT fire — the intermediate base defines on_failure.
        assert [f.rule for f in policy] == ["POLICY-DECISION-TYPE"]

    def test_non_player_class_is_ignored(self):
        text = (
            "class Estimator:\n"
            "    def choose_next(self, anything, at_all):\n"
            "        return 42\n"
        )
        assert not rules(analyze_text("m.py", text)) & POLICY_RULES


class TestInheritFailureMark:
    def test_mark_on_line_above_is_honored(self):
        text = (
            "from repro.players.base import BasePlayer\n"
            "from repro.sim.decisions import download_for\n"
            "\n"
            "\n"
            f"# {INHERIT_FAILURE_MARK}: the default is intended here\n"
            "class QuietPlayer(BasePlayer):\n"
            "    def choose_next(self, medium, ctx):\n"
            '        return download_for("V1")\n'
        )
        assert not rules(analyze_text("m.py", text)) & POLICY_RULES

    def test_unmarked_concrete_player_fires(self):
        text = (
            "from repro.players.base import BasePlayer\n"
            "from repro.sim.decisions import download_for\n"
            "\n"
            "\n"
            "class QuietPlayer(BasePlayer):\n"
            "    def choose_next(self, medium, ctx):\n"
            '        return download_for("V1")\n'
        )
        assert rules(analyze_text("m.py", text)) & POLICY_RULES == {
            "POLICY-MISSING-FAILURE-HOOK"
        }

    def test_abstract_player_without_choose_next_is_not_concrete(self):
        text = (
            "from repro.players.base import BasePlayer\n"
            "\n"
            "\n"
            "class MixinPlayer(BasePlayer):\n"
            "    def on_session_start(self, ctx):\n"
            "        return None\n"
        )
        assert not rules(analyze_text("m.py", text)) & POLICY_RULES


class TestShippedPlayersHoldTheContract:
    def test_src_tree_has_zero_policy_findings(self):
        files = {
            p.relative_to(REPO_ROOT).as_posix(): p.read_text()
            for p in sorted(SRC_REPRO.rglob("*.py"))
        }
        config = AnalyzerConfig(selected=POLICY_RULES)
        findings = analyze_files(files, config)
        assert findings == [], [str(f) for f in findings]

    def test_policy_findings_parallel_parity(self):
        """A seeded violation reports byte-identically under one and
        two workers (the whole-program index is rebuilt per worker)."""
        files = {
            p.relative_to(REPO_ROOT).as_posix(): p.read_text()
            for p in sorted(SRC_REPRO.rglob("*.py"))
        }
        bola = files["src/repro/core/bola_joint.py"]
        assert "# policy: inherit-failure" in bola
        files["src/repro/core/bola_joint.py"] = bola.replace(
            "  # policy: inherit-failure", "", 1
        )
        config = AnalyzerConfig(selected=POLICY_RULES)
        serial = analyze_files(files, config)
        parallel = analyze_files_parallel(files, config, jobs=2)
        assert [str(f) for f in serial] == [str(f) for f in parallel]
        assert rules(serial) == {"POLICY-MISSING-FAILURE-HOOK"}
