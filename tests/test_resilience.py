"""The resilience subsystem: taxonomy, retry policy, resume, breaker."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import TraceError
from repro.media.tracks import MediaType
from repro.net.failures import FailureModel, NoFailures
from repro.net.link import shared
from repro.net.resilience import (
    DEFAULT_FAILURE_MIX,
    PARTIAL_BYTE_KINDS,
    CircuitBreaker,
    FailureKind,
    ResilienceModel,
    RetryPolicy,
)
from repro.net.traces import constant
from repro.sim.session import Session, SessionConfig


def _run(content, failure_model, retry_policy, kbps=900.0, **config_kwargs):
    config = SessionConfig(
        failure_model=failure_model,
        retry_policy=retry_policy,
        **config_kwargs,
    )
    player = RecommendedPlayer(hsub_combinations(content))
    return Session(content, player, shared(constant(kbps)), config).run()


class TestFailureModelContract:
    def test_reset_rewinds_the_verdict_stream(self):
        model = FailureModel(0.5, seed=9)
        first = [model.next_request() for _ in range(50)]
        model.reset()
        second = [model.next_request() for _ in range(50)]
        assert first == second

    def test_zero_probability_draws_no_rng(self):
        model = FailureModel(0.0, seed=3)
        state_before = model._rng.getstate()
        assert all(model.next_request() is None for _ in range(10))
        assert model._rng.getstate() == state_before

    def test_no_failures_matches_zero_probability_model(self):
        null = NoFailures()
        zero = FailureModel(0.0)
        for _ in range(10):
            assert null.next_request() is None
            assert zero.next_request() is None
        assert null._rng.getstate() == zero._rng.getstate()


class TestResilienceModel:
    def test_taxonomy_kinds_all_occur(self):
        model = ResilienceModel(1.0, seed=0)
        kinds = {model.next_request().kind for _ in range(500)}
        assert kinds == set(DEFAULT_FAILURE_MIX)

    def test_header_kinds_never_carry_bytes_or_resume(self):
        model = ResilienceModel(1.0, seed=4)
        for _ in range(300):
            verdict = model.next_request()
            if verdict.kind not in PARTIAL_BYTE_KINDS:
                assert verdict.fraction == 0.0
                assert not verdict.resumable

    def test_identical_seeds_identical_streams(self):
        a = ResilienceModel(0.4, seed=11)
        b = ResilienceModel(0.4, seed=11)
        assert [a.next_request() for _ in range(200)] == [
            b.next_request() for _ in range(200)
        ]

    def test_restricted_mix_only_emits_named_kinds(self):
        model = ResilienceModel(
            1.0, seed=2, mix={FailureKind.HTTP_404: 1.0}
        )
        assert all(
            model.next_request().kind is FailureKind.HTTP_404
            for _ in range(100)
        )

    def test_rejects_bad_mixes(self):
        with pytest.raises(TraceError):
            ResilienceModel(0.5, mix={})
        with pytest.raises(TraceError):
            ResilienceModel(0.5, mix={FailureKind.TIMEOUT: -1.0})
        with pytest.raises(TraceError):
            ResilienceModel(0.5, mix={"not-a-kind": 1.0})
        with pytest.raises(TraceError):
            ResilienceModel(0.5, resume_probability=1.5)


class TestRetryPolicyProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        base=st.floats(min_value=0.01, max_value=5.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
        cap_extra=st.floats(min_value=0.0, max_value=30.0),
        attempts=st.integers(min_value=2, max_value=12),
    )
    def test_backoff_non_decreasing_up_to_cap(
        self, base, factor, cap_extra, attempts
    ):
        policy = RetryPolicy(
            max_attempts=attempts,
            base_delay_s=base,
            backoff_factor=factor,
            max_delay_s=base + cap_extra,
        )
        delays = [policy.nominal_delay_s(n) for n in range(1, attempts + 1)]
        assert delays[0] == 0.0
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        assert all(d <= policy.max_delay_s + 1e-12 for d in delays)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        chunk=st.integers(min_value=0, max_value=10_000),
        attempt=st.integers(min_value=2, max_value=8),
    )
    def test_jitter_is_deterministic_and_bounded(self, seed, chunk, attempt):
        policy = RetryPolicy(max_attempts=8, jitter=0.25, jitter_seed=seed)
        for medium in (MediaType.VIDEO, MediaType.AUDIO):
            nominal = policy.nominal_delay_s(attempt)
            dispatched = policy.delay_s(attempt, medium, chunk)
            assert dispatched == policy.delay_s(attempt, medium, chunk)
            assert nominal <= dispatched <= nominal * (1 + policy.jitter)

    def test_per_medium_timeouts(self):
        policy = RetryPolicy(
            request_timeout_s=8.0, video_timeout_s=12.0, audio_timeout_s=3.0
        )
        assert policy.timeout_for(MediaType.VIDEO) == 12.0
        assert policy.timeout_for(MediaType.AUDIO) == 3.0
        default = RetryPolicy(request_timeout_s=5.0)
        assert default.timeout_for(MediaType.VIDEO) == 5.0

    def test_validation(self):
        with pytest.raises(TraceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(TraceError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(TraceError):
            RetryPolicy(base_delay_s=4.0, max_delay_s=1.0)
        with pytest.raises(TraceError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(TraceError):
            RetryPolicy(request_timeout_s=0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
        assert not breaker.record_failure("V5", now=0.0)
        assert not breaker.record_failure("V5", now=1.0)
        assert breaker.record_failure("V5", now=2.0)
        assert breaker.is_open("V5", now=5.0)
        assert breaker.open_keys(now=5.0) == {"V5"}
        assert not breaker.is_open("V5", now=12.0)

    def test_success_closes_immediately(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        breaker.record_failure("A1", now=0.0)
        breaker.record_failure("A1", now=1.0)
        assert breaker.is_open("A1", now=2.0)
        breaker.record_success("A1")
        assert not breaker.is_open("A1", now=2.0)

    def test_weight_accelerates_tripping(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0)
        breaker.record_failure("V1", now=0.0)
        assert breaker.record_failure("V1", now=0.5, weight=2)


class TestSessionResilience:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000_000))
    def test_identical_seeds_identical_schedules(self, content, seed):
        def once():
            return _run(
                content,
                ResilienceModel(0.25, seed=seed),
                RetryPolicy(jitter_seed=seed),
            )

        a, b = once(), once()
        schedule = a.retry_schedule()
        assert schedule == b.retry_schedule()
        assert a.byte_accounting() == b.byte_accounting()

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        budget=st.integers(min_value=0, max_value=12),
    )
    def test_certain_failure_finite_budget_terminates_cleanly(
        self, content, seed, budget
    ):
        result = _run(
            content,
            ResilienceModel(1.0, seed=seed),
            RetryPolicy(retry_budget=budget),
        )
        assert not result.completed
        assert result.termination_reason in (
            "retry_budget_exhausted",
            "attempts_exhausted",
        )
        assert result.byte_accounting()["reconciles"]
        assert result.summary()["termination_reason"] is not None

    def test_byte_accounting_reconciles_under_mixed_weather(self, content):
        result = _run(
            content, ResilienceModel(0.3, seed=4), RetryPolicy()
        )
        accounting = result.byte_accounting()
        assert accounting["reconciles"]
        assert math.isclose(
            accounting["bits_served"],
            accounting["bits_played"]
            + accounting["bits_wasted"]
            + accounting["bits_resumed"],
            rel_tol=1e-9,
            abs_tol=1e-3,
        )
        assert accounting["bits_resumed"] > 0  # resume actually engaged

    def test_resume_reduces_waste_with_no_extra_stalls(self, content):
        def run_with(resume_probability):
            totals = {"waste": 0.0, "rebuf": 0.0}
            for seed in range(3):
                result = _run(
                    content,
                    ResilienceModel(
                        0.1, seed=seed, resume_probability=resume_probability
                    ),
                    RetryPolicy(),
                )
                totals["waste"] += result.bits_wasted
                totals["rebuf"] += result.total_rebuffer_s
            return totals

        resume, discard = run_with(0.6), run_with(0.0)
        assert resume["waste"] < discard["waste"]
        assert resume["rebuf"] <= discard["rebuf"] + 1e-9

    def test_retry_records_carry_taxonomy_and_attempts(self, content):
        result = _run(content, ResilienceModel(0.3, seed=2), RetryPolicy())
        assert result.failures
        for failure in result.failures:
            assert failure.kind in {k.value for k in FailureKind}
            assert failure.attempt >= 1
            if failure.retry_at is not None:
                assert failure.retry_at >= failure.failed_at

    def test_live_session_skips_instead_of_dying(self, content):
        result = _run(
            content,
            ResilienceModel(1.0, seed=0, mix={FailureKind.HTTP_404: 1.0}),
            RetryPolicy(max_attempts=2, retry_budget=100_000),
            live_offset_s=2.0,
        )
        assert result.skips
        assert result.termination_reason is None or result.skips

    def test_legacy_no_policy_path_unchanged(self, content):
        # Without a RetryPolicy the legacy contract holds: immediate
        # re-ask, no resume, no skip, no termination reason.
        result = _run(content, FailureModel(0.2, seed=1), None)
        assert result.completed
        assert result.termination_reason is None
        assert result.bits_resumed == 0.0
        assert not result.skips
        assert all(f.retry_at is None for f in result.failures)
