"""Track and Ladder models."""

import pytest

from repro.errors import MediaError
from repro.media.tracks import (
    Ladder,
    MediaType,
    Track,
    audio_track,
    make_ladder,
    video_track,
)


class TestTrack:
    def test_video_track_fields(self):
        track = video_track("V3", 362, 641, 473, height=360)
        assert track.media_type is MediaType.VIDEO
        assert track.is_video and not track.is_audio
        assert track.avg_kbps == 362
        assert track.peak_kbps == 641
        assert track.declared_kbps == 473
        assert track.height == 360

    def test_audio_track_fields(self):
        track = audio_track("A2", 196, 199, 196, channels=6, sampling_khz=48.0)
        assert track.media_type is MediaType.AUDIO
        assert track.is_audio and not track.is_video
        assert track.channels == 6
        assert track.sampling_khz == 48.0

    def test_declared_defaults_to_average(self):
        # Table 1: audio declared bitrate equals the average bitrate.
        track = audio_track("A1", 128)
        assert track.declared_kbps == 128

    def test_audio_peak_defaults_slightly_above_average(self):
        track = audio_track("A1", 100)
        assert 100 < track.peak_kbps < 110

    def test_empty_id_rejected(self):
        with pytest.raises(MediaError):
            Track("", MediaType.VIDEO, 100, 150)

    def test_nonpositive_avg_rejected(self):
        with pytest.raises(MediaError):
            Track("V1", MediaType.VIDEO, 0, 100)

    def test_peak_below_avg_rejected(self):
        with pytest.raises(MediaError):
            Track("V1", MediaType.VIDEO, 200, 100)

    def test_nonpositive_declared_rejected(self):
        with pytest.raises(MediaError):
            Track("V1", MediaType.VIDEO, 100, 150, declared_kbps=-1)

    def test_describe_video(self):
        text = video_track("V1", 111, 119, height=144).describe()
        assert "V1" in text and "144p" in text

    def test_describe_audio(self):
        text = audio_track("A1", 128, channels=2, sampling_khz=44.0).describe()
        assert "2 ch" in text and "44 kHz" in text

    def test_frozen(self):
        track = video_track("V1", 111, 119)
        with pytest.raises(AttributeError):
            track.avg_kbps = 999


class TestLadder:
    def _video_ladder(self):
        return make_ladder(
            MediaType.VIDEO,
            [video_track("V2", 246, 261), video_track("V1", 111, 119)],
        )

    def test_make_ladder_sorts_by_declared(self):
        ladder = self._video_ladder()
        assert ladder.track_ids == ("V1", "V2")

    def test_len_iter_getitem(self):
        ladder = self._video_ladder()
        assert len(ladder) == 2
        assert [t.track_id for t in ladder] == ["V1", "V2"]
        assert ladder[1].track_id == "V2"

    def test_lowest_highest(self):
        ladder = self._video_ladder()
        assert ladder.lowest.track_id == "V1"
        assert ladder.highest.track_id == "V2"

    def test_index_of(self):
        ladder = self._video_ladder()
        assert ladder.index_of("V2") == 1

    def test_index_of_missing_raises(self):
        with pytest.raises(MediaError):
            self._video_ladder().index_of("V9")

    def test_by_id(self):
        assert self._video_ladder().by_id("V1").avg_kbps == 111

    def test_highest_below_budget(self):
        ladder = self._video_ladder()
        assert ladder.highest_below(250).track_id == "V2"
        assert ladder.highest_below(200).track_id == "V1"

    def test_highest_below_falls_back_to_lowest(self):
        assert self._video_ladder().highest_below(1).track_id == "V1"

    def test_empty_rejected(self):
        with pytest.raises(MediaError):
            Ladder(media_type=MediaType.VIDEO, tracks=())

    def test_mixed_media_rejected(self):
        with pytest.raises(MediaError):
            Ladder(
                media_type=MediaType.VIDEO,
                tracks=(video_track("V1", 111, 119), audio_track("A1", 128)),
            )

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MediaError):
            Ladder(
                media_type=MediaType.VIDEO,
                tracks=(video_track("V1", 111, 119), video_track("V1", 246, 261)),
            )

    def test_unsorted_rejected(self):
        with pytest.raises(MediaError):
            Ladder(
                media_type=MediaType.VIDEO,
                tracks=(video_track("V2", 246, 261), video_track("V1", 111, 119)),
            )
