"""Autofix layer: minimal edits, convergence, and the idempotence
guarantee; plus the Table-1 packagings-lint-clean property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity, analyze_files, worst_severity
from repro.analysis.autofix import FIXERS, TextEdit, apply_edits, fix_files
from repro.core.combinations import (
    all_combinations,
    combinations_from_pairs,
    hsub_combinations,
)
from repro.manifest.dash import write_mpd
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import drama_show


def rules(findings):
    return {f.rule for f in findings}


BROKEN_MASTER = """#EXTM3U
#EXT-X-STREAM-INF:BANDWIDTH=900000,CODECS="avc1,mp4a",AUDIO="aud"
V1_A2.m3u8
#EXT-X-STREAM-INF:BANDWIDTH=300000,CODECS="avc1,mp4a",AUDIO="aud"
V1_A1.m3u8
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="aud",NAME="A1",URI="A1.m3u8"
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="aud",NAME="A2",URI="A2.m3u8"
"""

BROKEN_MEDIA = """#EXTM3U
#EXT-X-PLAYLIST-TYPE:VOD
#EXTINF:4.50000,
#EXT-X-BYTERANGE:500000@0
{track}_00000.mp4
#EXTINF:4.00000,
#EXT-X-BYTERANGE:400000@500000
{track}_00001.mp4
"""


def broken_package():
    files = {"master.m3u8": BROKEN_MASTER}
    for track in ("V1", "A1", "A2"):
        files[f"{track}.m3u8"] = BROKEN_MEDIA.format(track=track)
    return files


class TestApplyEdits:
    def test_insert_and_replace(self):
        text, applied = apply_edits(
            "abcdef", [TextEdit(0, 0, "X"), TextEdit(3, 5, "Y")]
        )
        assert text == "XabcYf"
        assert applied == 2

    def test_overlapping_edit_skipped(self):
        text, applied = apply_edits(
            "abcdef", [TextEdit(1, 4, "X"), TextEdit(2, 5, "Y")]
        )
        assert applied == 1


class TestFixBrokenFixture:
    def test_nonconformant_fixture_relints_clean(self):
        """The ISSUE acceptance check: --fix output has zero findings
        (the curation warning aside, which has no mechanical fix)."""
        result = fix_files(broken_package())
        after = analyze_files(result.files)
        fixable_left = [f for f in after if f.rule in FIXERS]
        assert fixable_left == []
        assert worst_severity(after) is not Severity.ERROR

    def test_fix_is_idempotent_on_fixture(self):
        once = fix_files(broken_package())
        twice = fix_files(once.files)
        assert twice.files == once.files
        assert twice.n_fixed == 0

    def test_version_and_targetduration_inserted(self):
        result = fix_files(broken_package())
        fixed = result.files["V1.m3u8"]
        assert "#EXT-X-VERSION:4" in fixed  # byteranges need version 4
        # Python's round() is banker's: round(4.5) == 4, matching the
        # rule's own rounding, so target 4 satisfies both segments.
        assert "#EXT-X-TARGETDURATION:4" in fixed
        assert fixed.rstrip().endswith("#EXT-X-ENDLIST")

    def test_variant_order_fixed_ascending(self):
        result = fix_files(broken_package())
        master = result.files["master.m3u8"]
        assert master.index("V1_A1.m3u8") < master.index("V1_A2.m3u8")

    def test_average_bandwidth_inserted(self):
        result = fix_files(broken_package())
        master = result.files["master.m3u8"]
        assert "AVERAGE-BANDWIDTH=" in master

    def test_missing_extm3u_inserted(self):
        files = {"V1.m3u8": BROKEN_MEDIA.format(track="V1").replace("#EXTM3U\n", "")}
        result = fix_files(files)
        assert result.files["V1.m3u8"].startswith("#EXTM3U\n")

    def test_bitrate_tag_inserted_in_mixed_playlist(self):
        mixed = """#EXTM3U
#EXT-X-VERSION:4
#EXT-X-TARGETDURATION:4
#EXT-X-BITRATE:1000
#EXTINF:4.00000,
V1_00000.mp4
#EXTINF:4.00000,
#EXT-X-BYTERANGE:400000@0
V1_00001.mp4
#EXT-X-ENDLIST
"""
        result = fix_files({"V1.m3u8": mixed})
        fixed = result.files["V1.m3u8"]
        # 400000 B / 4 s = 800 kbps for the untagged segment
        assert fixed.count("#EXT-X-BITRATE:") == 2
        assert "#EXT-X-BITRATE:800" in fixed


# A generator for small, structurally varied media playlists: random
# subsets of defects the fixers must repair in one fix_files() call.
_media_defects = st.fixed_dictionaries(
    {
        "drop_extm3u": st.booleans(),
        "drop_version": st.booleans(),
        "drop_target": st.booleans(),
        "bad_target": st.booleans(),
        "drop_endlist": st.booleans(),
        "n_segments": st.integers(min_value=1, max_value=4),
        "duration_tenths": st.integers(min_value=10, max_value=60),
    }
)


def _build_media(spec) -> str:
    lines = []
    if not spec["drop_extm3u"]:
        lines.append("#EXTM3U")
    if not spec["drop_version"]:
        lines.append("#EXT-X-VERSION:4")
    duration = spec["duration_tenths"] / 10.0
    if not spec["drop_target"]:
        target = 1 if spec["bad_target"] else max(1, int(round(duration)))
        lines.append(f"#EXT-X-TARGETDURATION:{target}")
    lines.append("#EXT-X-PLAYLIST-TYPE:VOD")
    offset = 0
    for i in range(spec["n_segments"]):
        lines.append(f"#EXTINF:{duration:.5f},")
        lines.append(f"#EXT-X-BYTERANGE:500000@{offset}")
        lines.append(f"V1_{i:05d}.mp4")
        offset += 500000
    if not spec["drop_endlist"]:
        lines.append("#EXT-X-ENDLIST")
    return "\n".join(lines) + "\n"


class TestFixProperties:
    @given(spec=_media_defects)
    @settings(max_examples=60, deadline=None)
    def test_autofix_idempotent(self, spec):
        files = {"V1.m3u8": _build_media(spec)}
        once = fix_files(files)
        twice = fix_files(once.files)
        assert twice.files == once.files

    @given(spec=_media_defects)
    @settings(max_examples=60, deadline=None)
    def test_fixed_output_relints_clean(self, spec):
        files = {"V1.m3u8": _build_media(spec)}
        result = fix_files(files)
        assert analyze_files(result.files) == []


#: The three Table-1 packagings of the reference title: DASH, HLS with
#: byte ranges (case i), HLS chunk-per-file with bitrate tags (case ii).
_pair_subsets = st.lists(
    st.sampled_from(
        [(f"V{i}", f"A{j}") for i in range(1, 7) for j in range(1, 4)]
    ),
    min_size=1,
    max_size=18,
    unique=True,
)


class TestTable1PackagingsLintClean:
    content = drama_show()

    def _combos(self, pairs):
        return combinations_from_pairs(self.content, pairs)

    @given(pairs=_pair_subsets)
    @settings(max_examples=25, deadline=None)
    def test_dash_packaging_has_no_errors(self, pairs):
        mpd = package_dash(self.content, allowed_combinations=self._combos(pairs))
        findings = analyze_files({"manifest.mpd": write_mpd(mpd)})
        assert worst_severity(findings) is not Severity.ERROR

    @given(pairs=_pair_subsets)
    @settings(max_examples=25, deadline=None)
    def test_hls_byterange_packaging_has_no_errors(self, pairs):
        package = package_hls(self.content, combinations=self._combos(pairs))
        findings = analyze_files(package.write_all())
        assert worst_severity(findings) is not Severity.ERROR

    @given(pairs=_pair_subsets)
    @settings(max_examples=25, deadline=None)
    def test_hls_chunk_tags_packaging_has_no_errors(self, pairs):
        package = package_hls(
            self.content,
            combinations=self._combos(pairs),
            single_file=False,
            include_bitrate_tag=True,
        )
        findings = analyze_files(package.write_all())
        assert worst_severity(findings) is not Severity.ERROR

    def test_reference_packagings_zero_error(self):
        """The exact Table-1 set: H_all, H_sub, and DASH."""
        for combos in (all_combinations(self.content), hsub_combinations(self.content)):
            for kwargs in (
                {"single_file": True},
                {"single_file": False, "include_bitrate_tag": True},
            ):
                package = package_hls(self.content, combinations=combos, **kwargs)
                findings = analyze_files(package.write_all())
                assert worst_severity(findings) is not Severity.ERROR
        mpd = package_dash(self.content)
        findings = analyze_files({"manifest.mpd": write_mpd(mpd)})
        assert worst_severity(findings) is not Severity.ERROR

    def test_self_lint_flag_passes_on_conformant_packaging(self):
        package_hls(
            self.content,
            combinations=hsub_combinations(self.content),
            self_lint=True,
        )
        package_dash(self.content, self_lint=True)

    def test_self_lint_flag_raises_on_blind_packaging(self):
        import pytest

        from repro.errors import ManifestError

        with pytest.raises(ManifestError):
            package_hls(
                self.content,
                combinations=hsub_combinations(self.content),
                single_file=False,
                include_bitrate_tag=False,
                self_lint=True,
            )
