"""repro.runner: job specs, cache, and the parallel engine.

The contracts under test are the ones the experiment layer leans on:
stable content-addressed job keys, byte-identical results whether a
grid runs serially, on a process pool, or from the on-disk cache, and
cache invalidation whenever any outcome-affecting spec field changes.
"""

import os
import pickle

import pytest

from repro.errors import ExperimentError
from repro.net.resilience import FailureKind, RetryPolicy
from repro.runner import (
    FailureSpec,
    GridRunner,
    PlayerSpec,
    ResultCache,
    SimulationJob,
    TraceSpec,
    get_runner_options,
    run_jobs,
    runner_options,
    set_runner_options,
)
from repro.runner.jobs import ContentSpec


def small_grid():
    """Four cheap, heterogeneous jobs (two players x two link rates)."""
    return [
        SimulationJob(
            player=PlayerSpec(name, combinations=combos),
            trace=TraceSpec.constant(kbps),
        )
        for kbps in (700.0, 1500.0)
        for name, combos in (("recommended", "hsub"), ("shaka", "all"))
    ]


def result_fingerprints(outcomes):
    return [outcome.result.to_dict() for outcome in outcomes]


class TestJobSpecs:
    def test_key_is_stable_across_instances(self):
        a = SimulationJob(trace=TraceSpec.constant(700.0))
        b = SimulationJob(trace=TraceSpec.constant(700.0))
        assert a.key() == b.key()

    def test_key_survives_pickle(self):
        job = SimulationJob(
            player=PlayerSpec("shaka", combinations="all"),
            trace=TraceSpec.hspa(3),
            failure=FailureSpec(0.1, seed=2, taxonomy=True),
            retry_policy=RetryPolicy(max_attempts=6),
            seed=7,
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.key() == job.key()

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda j: SimulationJob(player=j.player, trace=TraceSpec.constant(701.0)),
            lambda j: SimulationJob(player=PlayerSpec("dashjs"), trace=j.trace),
            lambda j: SimulationJob(player=j.player, trace=j.trace, seed=1),
            lambda j: SimulationJob(
                player=j.player, trace=j.trace, failure=FailureSpec(0.1, seed=0)
            ),
            lambda j: SimulationJob(
                player=j.player, trace=j.trace, retry_policy=RetryPolicy()
            ),
            lambda j: SimulationJob(player=j.player, trace=j.trace, rtt_s=0.05),
            lambda j: SimulationJob(player=j.player, trace=j.trace, live_offset_s=4.0),
        ],
    )
    def test_any_outcome_affecting_field_changes_the_key(self, mutation):
        base = SimulationJob(
            player=PlayerSpec("recommended"), trace=TraceSpec.constant(700.0)
        )
        assert mutation(base).key() != base.key()

    def test_failure_mix_order_is_part_of_the_key(self):
        """The model maps draws through cumulative weights, so mix
        order is seeded behaviour — reordering must miss the cache."""
        forward = FailureSpec.with_mix(
            0.1, 0, {FailureKind.CONNECTION_RESET: 0.7, FailureKind.HTTP_5XX: 0.3}
        )
        reverse = FailureSpec.with_mix(
            0.1, 0, {FailureKind.HTTP_5XX: 0.3, FailureKind.CONNECTION_RESET: 0.7}
        )
        a = SimulationJob(failure=forward)
        b = SimulationJob(failure=reverse)
        assert a.key() != b.key()

    def test_unknown_specs_rejected(self):
        with pytest.raises(ExperimentError):
            SimulationJob(content=ContentSpec("nope")).build()
        with pytest.raises(ExperimentError):
            SimulationJob(player=PlayerSpec("vlc")).build()
        with pytest.raises(ExperimentError):
            SimulationJob(trace=TraceSpec("fractal")).build()

    def test_func_trace_spec_builds_named_paper_profiles(self):
        from repro.experiments.traces import fig3_spec, fig3_trace, fig4b_spec

        assert fig3_spec().build().to_pairs() == fig3_trace().to_pairs()
        assert fig4b_spec().build().average_kbps() == pytest.approx(600.0)

    def test_build_produces_runnable_session(self):
        from repro.sim.session import simulate

        content, player, network, config = SimulationJob(
            trace=TraceSpec.constant(2000.0)
        ).build()
        result = simulate(content, player, network, config)
        assert result.completed


class TestEngineDeterminism:
    def test_serial_and_parallel_results_identical(self):
        jobs = small_grid()
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=4)
        assert [o.job for o in serial] == jobs  # input order preserved
        assert [o.job for o in parallel] == jobs
        assert result_fingerprints(serial) == result_fingerprints(parallel)

    def test_failure_grid_schedules_identical_across_workers(self):
        jobs = [
            SimulationJob(
                player=PlayerSpec("recommended"),
                trace=TraceSpec.constant(900.0),
                failure=FailureSpec.with_mix(
                    0.1, seed, {FailureKind.CONNECTION_RESET: 1.0}
                ),
                retry_policy=RetryPolicy(),
                seed=seed,
            )
            for seed in range(3)
        ]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=3)
        assert [o.result.retry_schedule() for o in serial] == [
            o.result.retry_schedule() for o in parallel
        ]
        assert any(o.result.failures for o in serial)

    def test_wall_time_is_instrumented(self):
        (outcome,) = run_jobs([SimulationJob(trace=TraceSpec.constant(2000.0))])
        assert outcome.wall_time_s > 0.0
        assert not outcome.cached


class TestResultCache:
    def test_second_run_is_all_hits_and_bit_identical(self, tmp_path):
        jobs = small_grid()
        cold_cache = ResultCache(str(tmp_path / "cache"))
        cold = run_jobs(jobs, workers=1, cache=cold_cache)
        assert cold_cache.stats.misses == len(jobs)
        assert cold_cache.stats.bytes_written > 0

        warm_cache = ResultCache(str(tmp_path / "cache"))
        warm = run_jobs(jobs, workers=1, cache=warm_cache)
        assert warm_cache.stats.hits == len(jobs)
        assert warm_cache.stats.misses == 0
        assert all(o.cached for o in warm)
        assert result_fingerprints(warm) == result_fingerprints(cold)

    def test_changed_spec_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = SimulationJob(trace=TraceSpec.constant(700.0))
        run_jobs([base], cache=cache)
        for changed in (
            SimulationJob(trace=TraceSpec.constant(800.0)),
            SimulationJob(trace=TraceSpec.constant(700.0), seed=1),
            SimulationJob(
                trace=TraceSpec.constant(700.0), retry_policy=RetryPolicy()
            ),
        ):
            before = cache.stats.misses
            run_jobs([changed], cache=cache)
            assert cache.stats.misses == before + 1

    def test_corrupt_entry_is_evicted_not_raised(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = SimulationJob(trace=TraceSpec.constant(700.0))
        run_jobs([job], cache=cache)
        path = cache._path(job.key())
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get(job.key()) is None
        assert cache.stats.evictions == 1
        # Garbage bytes are corruption, not a partial write.
        assert cache.stats.truncated == 0
        assert not os.path.exists(path)

    def test_truncated_entry_is_classified_evicted_and_recounted(self, tmp_path):
        """A partially-written entry (worker killed mid-write, torn
        write on a full disk) must read as a miss at *every* cut
        point, be evicted, and bump the dedicated `truncated` stat."""
        cache = ResultCache(str(tmp_path))
        job = SimulationJob(trace=TraceSpec.constant(700.0))
        (outcome,) = run_jobs([job], cache=cache)
        path = cache._path(job.key())
        with open(path, "rb") as f:
            intact = f.read()
        # Cut inside the magic, inside the header, just after the
        # header, mid-payload, and one byte short of complete.
        offsets = [0, 3, 10, 20, len(intact) // 2, len(intact) - 1]
        for n, offset in enumerate(offsets, start=1):
            with open(path, "wb") as f:
                f.write(intact[:offset])
            assert cache.get(job.key()) is None, f"offset {offset}"
            assert not os.path.exists(path), f"offset {offset}"
            assert cache.stats.truncated == n, f"offset {offset}"
        assert cache.stats.evictions == len(offsets)
        # The evicted cell re-simulates and the cache heals.
        (replayed,) = run_jobs([job], cache=cache)
        assert cache.get(job.key()) is not None
        assert replayed.result.to_dict() == outcome.result.to_dict()

    def test_torn_entry_with_flipped_byte_is_corrupt_not_truncated(self, tmp_path):
        """Same length, damaged payload: the CRC catches it and it
        counts as corruption rather than truncation."""
        cache = ResultCache(str(tmp_path))
        job = SimulationJob(trace=TraceSpec.constant(700.0))
        run_jobs([job], cache=cache)
        path = cache._path(job.key())
        with open(path, "rb") as f:
            data = bytearray(f.read())
        data[-10] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(data))
        assert cache.get(job.key()) is None
        assert cache.stats.evictions == 1
        assert cache.stats.truncated == 0
        assert not os.path.exists(path)

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_jobs(small_grid()[:2], cache=cache)
        assert cache.clear() == 2
        assert cache.clear() == 0


class TestGridRunnerOptions:
    def test_defaults_are_serial_and_uncached(self):
        options = get_runner_options()
        assert options.workers == 1
        assert options.cache_dir is None
        runner = GridRunner()
        assert runner.workers == 1
        assert runner.cache is None

    def test_context_manager_restores_options(self, tmp_path):
        with runner_options(workers=4, cache_dir=str(tmp_path)):
            assert get_runner_options().workers == 4
            runner = GridRunner()
            assert runner.workers == 4
            assert runner.cache is not None
        assert get_runner_options().workers == 1
        assert get_runner_options().cache_dir is None

    def test_set_options_floor_at_one_worker(self):
        try:
            assert set_runner_options(workers=0).workers == 1
        finally:
            set_runner_options(workers=1, cache_dir=None)

    def test_params_report_cache_and_wall_time(self, tmp_path):
        with runner_options(cache_dir=str(tmp_path)):
            runner = GridRunner()
            jobs = small_grid()[:2]
            runner.run(jobs)
            params = runner.params()
            assert params["simulated"] == 2
            assert params["sim_wall_s"] > 0
            assert params["cache"]["misses"] == 2

            replay = GridRunner()
            replay.run(jobs)
            params = replay.params()
            assert params["simulated"] == 0
            assert params["cache"] == {
                "hits": 2,
                "misses": 0,
                "bytes_read": replay.cache.stats.bytes_read,
                "bytes_written": 0,
                "evictions": 0,
                "truncated": 0,
            }

    def test_use_cache_false_forces_fresh_simulation(self, tmp_path):
        with runner_options(cache_dir=str(tmp_path)):
            runner = GridRunner()
            jobs = small_grid()[:1]
            runner.run(jobs)
            fresh = runner.run(jobs, use_cache=False)
            assert not fresh[0].cached


class TestExperimentEquivalence:
    """The acceptance contract: an experiment's rows are identical
    whether its grid ran serially, in parallel, or from cache."""

    def test_fluctuation_rows_and_checks_stable(self, tmp_path):
        from repro.experiments import run_experiment

        serial = run_experiment("fluctuation")
        with runner_options(workers=2, cache_dir=str(tmp_path)):
            cold = run_experiment("fluctuation")
        with runner_options(workers=2, cache_dir=str(tmp_path)):
            warm = run_experiment("fluctuation")
        for report in (cold, warm):
            assert report.rows == serial.rows
            assert report.notes == serial.notes
            assert [(c.description, c.passed) for c in report.checks] == [
                (c.description, c.passed) for c in serial.checks
            ]
        assert warm.params["runner"]["simulated"] == 0
        assert warm.params["runner"]["cache"]["misses"] == 0


class TestRunnerCli:
    def test_run_flags_parse_and_cache_reports_in_params(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        argv = [
            "run",
            "fluctuation",
            "--jobs",
            "2",
            "--cache",
            "--cache-dir",
            cache_dir,
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "'hits': 1" in out
        assert os.path.isdir(cache_dir)

    def test_no_cache_wins_over_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        argv = [
            "run",
            "fluctuation",
            "--cache",
            "--no-cache",
            "--cache-dir",
            cache_dir,
        ]
        assert main(argv) == 0
        assert not os.path.exists(cache_dir)
