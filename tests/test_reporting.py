"""Markdown/JSON report persistence."""

import json
import os

import pytest

from repro.experiments.base import ExperimentReport
from repro.experiments.reporting import (
    report_to_dict,
    report_to_markdown,
    write_reports,
)


def sample_report(passed=True):
    report = ExperimentReport(
        experiment_id="demo",
        title="Demo experiment",
        params={"kbps": 700},
        paper_claim="something holds",
        header=("a", "b"),
        rows=[(1, 2), (3, 4)],
    )
    report.series["estimate"] = [(0.0, 500.0), (10.0, 900.0)]
    report.timelines["combo"] = [(0.0, "V1+A1"), (5.0, "V2+A1")]
    report.note("a note")
    report.check("always", passed)
    return report


class TestMarkdown:
    def test_structure(self):
        text = report_to_markdown(sample_report())
        assert text.startswith("# demo: Demo experiment")
        assert "> **Paper:** something holds" in text
        assert "| a | b |" in text
        assert "| 1 | 2 |" in text
        assert "✅ always" in text
        assert "**Verdict: REPRODUCED**" in text
        assert "```" in text  # charts fenced

    def test_failed_verdict(self):
        text = report_to_markdown(sample_report(passed=False))
        assert "❌" in text
        assert "MISMATCH" in text

    def test_charts_optional(self):
        text = report_to_markdown(sample_report(), include_charts=False)
        assert "```" not in text

    def test_timeline_compaction(self):
        text = report_to_markdown(sample_report())
        assert "V1+A1@0s → V2+A1@5s" in text


class TestJson:
    def test_roundtrips_through_json(self):
        data = report_to_dict(sample_report())
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["experiment_id"] == "demo"
        assert decoded["passed"] is True
        assert decoded["rows"] == [[1, 2], [3, 4]]
        assert decoded["series"]["estimate"] == [[0.0, 500.0], [10.0, 900.0]]

    def test_checks_serialized(self):
        data = report_to_dict(sample_report(passed=False))
        assert data["checks"][0]["passed"] is False


class TestWriteReports:
    def test_writes_all_artifacts(self, tmp_path):
        outcomes = write_reports(str(tmp_path), names=["table1", "table3"])
        assert outcomes == {"table1": True, "table3": True}
        assert (tmp_path / "table1.md").exists()
        assert (tmp_path / "table3.md").exists()
        assert (tmp_path / "summary.json").exists()
        index = (tmp_path / "README.md").read_text()
        assert "table1" in index and "REPRODUCED" in index
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["all_passed"] is True
        assert len(summary["experiments"]) == 2

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "out"
        write_reports(str(target), names=["table1"])
        assert target.exists()
