"""Download abandonment (the AbandonRequestsRule analogue)."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import PlayerError
from repro.media.content import drama_show
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant, from_pairs
from repro.players.base import BasePlayer
from repro.players.fixed import FixedTracksPlayer
from repro.sim.decisions import Download
from repro.sim.session import simulate

V = MediaType.VIDEO

#: A link that is generous for a minute, then crashes hard: exactly the
#: situation where a big in-flight chunk should be abandoned.
def crash_trace():
    return from_pairs([(60, 3000.0), (600, 120.0)], loop=False)


class TestAbandonmentBehaviour:
    def test_aborts_on_bandwidth_crash(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos, abandonment=True)
        result = simulate(content, player, shared(crash_trace()))
        assert result.completed
        assert len(result.aborts) >= 1
        # Every abort happened after the crash and fell back downward.
        for abort in result.aborts:
            assert abort.aborted_at >= 60.0

    def test_no_aborts_on_steady_links(self, content, hsub_combos):
        for kbps in (500.0, 900.0, 2500.0):
            player = RecommendedPlayer(hsub_combos, abandonment=True)
            result = simulate(content, player, shared(constant(kbps)))
            assert result.aborts == [], kbps

    def test_disabled_by_default(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(crash_trace()))
        assert result.aborts == []

    def test_abandonment_reduces_rebuffering(self, content, hsub_combos):
        with_abort = simulate(
            content,
            RecommendedPlayer(hsub_combos, abandonment=True),
            shared(crash_trace()),
        )
        without_abort = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(crash_trace()),
        )
        assert with_abort.total_rebuffer_s <= without_abort.total_rebuffer_s

    def test_wasted_bits_accounted(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos, abandonment=True)
        result = simulate(content, player, shared(crash_trace()))
        if result.aborts:
            assert result.wasted_bits > 0
            for abort in result.aborts:
                assert 0 < abort.wasted_fraction < 1

    def test_aborted_chunk_is_refetched_cheaper(self, content, hsub_combos):
        player = RecommendedPlayer(hsub_combos, abandonment=True)
        result = simulate(content, player, shared(crash_trace()))
        by_index = {
            record.chunk_index: record.track_id
            for record in result.downloads_of(V)
        }
        ladder_rank = {t.track_id: i for i, t in enumerate(content.video)}
        for abort in result.aborts:
            if abort.medium is not V:
                continue
            final_track = by_index[abort.chunk_index]
            assert ladder_rank[final_track] < ladder_rank[abort.track_id]


class _AbortLoopPlayer(BasePlayer):  # lint: allow[POLICY-MISSING-FAILURE-HOOK]
    """Pathological player: aborts everything, re-requests the same track."""

    def choose_next(self, medium, ctx):
        return Download(track_id="V1" if medium is V else "A1")  # lint: allow[POLICY-DECISION-TYPE]

    def consider_abort(self, medium, download, ctx):
        return download.bits_done > 0


class TestAbortLoopGuard:
    def test_runaway_abort_loop_is_detected(self):
        from repro.media.content import synthetic_content

        content = synthetic_content("tiny", [100], [48], n_chunks=2)
        # Aborts are evaluated at event boundaries; a trace with a
        # breakpoint every 0.2 s guarantees mid-download events, so the
        # pathological player re-aborts the same chunk until the guard
        # trips.
        choppy = from_pairs([(0.2, 500.0), (0.2, 499.0)])
        with pytest.raises(PlayerError):
            simulate(content, _AbortLoopPlayer(), shared(choppy))


class TestNonAbortingPlayersUnaffected:
    def test_fixed_player_never_aborts(self, content):
        result = simulate(
            content, FixedTracksPlayer("V2", "A1"), shared(crash_trace())
        )
        assert result.aborts == []
