"""Packager semantics (the Bento4 stand-in)."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.errors import ManifestError
from repro.manifest.packager import HlsPackage, package_hls, write_dash_package
from repro.media.content import drama_show


class TestHlsPackaging:
    def test_default_is_hall(self, hls_all):
        assert len(hls_all.master.variants) == 18

    def test_media_playlist_per_track(self, hls_all, content):
        expected = set(content.video.track_ids) | set(content.audio.track_ids)
        assert set(hls_all.media_playlists) == expected

    def test_hsub_only_packages_needed_tracks(self, hls_sub):
        # All 6 video + all 3 audio tracks appear in H_sub.
        assert set(hls_sub.media_playlists) == {
            "V1", "V2", "V3", "V4", "V5", "V6", "A1", "A2", "A3",
        }

    def test_variant_uris_encode_the_pair(self, hls_sub):
        uris = {v.uri for v in hls_sub.master.variants}
        assert "V3_A2.m3u8" in uris

    def test_variants_sorted_by_bandwidth(self, hls_all):
        bandwidths = [v.bandwidth_bps for v in hls_all.master.variants]
        assert bandwidths == sorted(bandwidths)

    def test_manifest_order_preserved_on_request(self, content):
        combos = hsub_combinations(content)
        package = package_hls(content, combinations=combos, variant_order="manifest")
        names = [v.name for v in package.master.variants]
        assert names == list(combos.names)

    def test_bad_variant_order_rejected(self, content):
        with pytest.raises(ManifestError):
            package_hls(content, variant_order="random")

    def test_audio_order_controls_rendition_listing(self, content):
        package = package_hls(content, audio_order=["A3", "A2", "A1"])
        assert [r.name for r in package.master.renditions] == ["A3", "A2", "A1"]

    def test_audio_order_must_cover_used_tracks(self, content):
        with pytest.raises(ManifestError):
            package_hls(content, audio_order=["A1"])

    def test_single_file_emits_byteranges(self, hls_all):
        playlist = hls_all.media_playlist("V1")
        assert all(s.byterange is not None for s in playlist.segments)
        # Offsets are contiguous.
        offset = 0
        for segment in playlist.segments:
            length, start = segment.byterange
            assert start == offset
            offset += length

    def test_chunk_per_file_has_no_byteranges(self, content):
        package = package_hls(content, single_file=False)
        playlist = package.media_playlist("V1")
        assert all(s.byterange is None for s in playlist.segments)
        assert len({s.uri for s in playlist.segments}) == len(playlist.segments)

    def test_missing_media_playlist_lookup(self, hls_all):
        with pytest.raises(ManifestError):
            hls_all.media_playlist("V9")

    def test_write_all_produces_documents(self, hls_sub):
        files = hls_sub.write_all()
        assert "master.m3u8" in files
        assert "V1.m3u8" in files and "A3.m3u8" in files
        assert all(text.startswith("#EXTM3U") for text in files.values())


class TestDerivedTrackBitrates:
    def test_byterange_package_yields_bitrates(self, hls_all, content):
        derived = hls_all.derived_track_bitrates()
        for track in list(content.video) + list(content.audio):
            avg, peak = derived[track.track_id]
            assert avg == pytest.approx(track.avg_kbps, rel=0.01)
            assert peak == pytest.approx(track.peak_kbps, rel=0.01)

    def test_blind_package_raises(self, content):
        package = package_hls(content, single_file=False, include_bitrate_tag=False)
        with pytest.raises(ManifestError):
            package.derived_track_bitrates()


class TestDashPackaging:
    def test_write_dash_package(self, content):
        files = write_dash_package(content)
        assert set(files) == {"manifest.mpd"}
        assert files["manifest.mpd"].startswith("<?xml")
