"""Cross-module integration: the full manifest-to-playback pipeline."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.manifest.dash import parse_mpd, write_mpd
from repro.manifest.hls import parse_master_playlist, write_master_playlist
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import drama_show
from repro.media.tracks import MediaType
from repro.net.link import SeparatePaths, shared
from repro.net.traces import constant, random_walk
from repro.players.dashjs import DashJsPlayer
from repro.players.exoplayer import ExoPlayerDash, ExoPlayerHls
from repro.players.shaka import ShakaPlayer
from repro.qoe.metrics import compute_qoe
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestSerializedManifestPipeline:
    """Players built from *serialized-then-reparsed* manifests behave
    identically — i.e. the wire format carries everything the models use."""

    def test_exoplayer_dash_through_xml(self, content, dash_manifest):
        reparsed = parse_mpd(write_mpd(dash_manifest))
        original = ExoPlayerDash(dash_manifest)
        from_xml = ExoPlayerDash(reparsed)
        assert original.combination_names == from_xml.combination_names

    def test_exoplayer_hls_through_m3u8(self, content, hls_sub):
        text = write_master_playlist(hls_sub.master)
        reparsed = parse_master_playlist(text)
        original = ExoPlayerHls(hls_sub.master)
        from_text = ExoPlayerHls(reparsed)
        assert original.fixed_audio_id == from_text.fixed_audio_id
        assert original.video_rungs == from_text.video_rungs

    def test_shaka_through_m3u8(self, content, hls_all):
        reparsed = parse_master_playlist(write_master_playlist(hls_all.master))
        original = ShakaPlayer.from_hls(hls_all.master)
        from_text = ShakaPlayer.from_hls(reparsed)
        assert [v.name for v in original.variants] == [
            v.name for v in from_text.variants
        ]

    def test_full_pipeline_simulation(self, content):
        """Package -> serialize -> parse -> play: end to end."""
        text = write_master_playlist(
            package_hls(content, combinations=hsub_combinations(content)).master
        )
        player = ExoPlayerHls(parse_master_playlist(text))
        result = simulate(content, player, shared(constant(2000.0)))
        assert result.completed


class TestCrossPlayerComparisons:
    def test_recommended_dominates_on_fig3_scenario(self, content):
        from repro.experiments.traces import fig3_trace

        hsub = hsub_combinations(content)
        exo = ExoPlayerHls(
            package_hls(
                content, combinations=hsub, audio_order=["A3", "A2", "A1"]
            ).master
        )
        exo_result = simulate(content, exo, shared(fig3_trace()))
        rec_result = simulate(
            content, RecommendedPlayer(hsub), shared(fig3_trace())
        )
        assert (
            compute_qoe(rec_result, content).score
            > compute_qoe(exo_result, content).score
        )

    def test_all_players_complete_on_generous_link(self, content, dash_manifest, hls_all):
        players = [
            ExoPlayerDash(dash_manifest),
            ExoPlayerHls(hls_all.master),
            ShakaPlayer.from_hls(hls_all.master),
            DashJsPlayer(dash_manifest),
            RecommendedPlayer(hsub_combinations(content)),
        ]
        for player in players:
            result = simulate(content, player, shared(constant(8000.0)))
            assert result.completed, player.name
            assert result.n_stalls == 0, player.name

    def test_all_players_survive_a_harsh_variable_link(self, content, dash_manifest, hls_all):
        for make_player in (
            lambda: ExoPlayerDash(dash_manifest),
            lambda: ExoPlayerHls(hls_all.master),
            lambda: ShakaPlayer.from_hls(hls_all.master),
            lambda: DashJsPlayer(dash_manifest),
            lambda: RecommendedPlayer(hsub_combinations(content)),
        ):
            trace = random_walk(500, seed=11, spread=0.9)
            result = simulate(content, make_player(), shared(trace))
            assert result.completed


class TestSeparatePathTopology:
    """Section 1: demuxed tracks 'may be located at different servers'."""

    def test_recommended_on_split_paths(self, content):
        network = SeparatePaths(
            video_trace=constant(2000.0), audio_trace=constant(400.0)
        )
        player = RecommendedPlayer(hsub_combinations(content))
        result = simulate(content, player, network)
        assert result.completed
        assert result.n_stalls == 0

    def test_audio_path_bottleneck_stalls_despite_fast_video(self, content):
        """The defining demuxed failure: a starved audio path stalls
        playback no matter how fast video arrives."""
        from repro.players.fixed import FixedTracksPlayer

        network = SeparatePaths(
            video_trace=constant(10_000.0), audio_trace=constant(100.0)
        )
        player = FixedTracksPlayer("V2", "A3", balanced=False)
        result = simulate(content, player, network)
        assert result.total_rebuffer_s > 0


class TestSynthesisToQoEConsistency:
    def test_bits_downloaded_match_chunk_table(self, content):
        player = RecommendedPlayer(hsub_combinations(content))
        result = simulate(content, player, shared(constant(900.0)))
        for record in result.downloads:
            expected = content.chunk(record.track_id, record.chunk_index).size_bits
            assert record.size_bits == expected

    def test_download_segments_sum_to_size(self, content):
        player = RecommendedPlayer(hsub_combinations(content))
        result = simulate(content, player, shared(constant(900.0)))
        for record in result.downloads:
            assert sum(s.bits for s in record.segments) == pytest.approx(
                record.size_bits
            )
