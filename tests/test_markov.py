"""Markov-modulated trace generation."""

import pytest

from repro.errors import TraceError
from repro.net.markov import MarkovState, hspa_preset, lte_preset, markov_trace


def two_state(duration=100.0, seed=1, **kwargs):
    states = [
        MarkovState(kbps=1000, mean_holding_s=10.0),
        MarkovState(kbps=200, mean_holding_s=5.0),
    ]
    transition = [[0.3, 0.7], [0.6, 0.4]]
    return markov_trace(states, transition, duration, seed, **kwargs)


class TestMarkovState:
    def test_negative_rate_rejected(self):
        with pytest.raises(TraceError):
            MarkovState(kbps=-1, mean_holding_s=5)

    def test_nonpositive_holding_rejected(self):
        with pytest.raises(TraceError):
            MarkovState(kbps=100, mean_holding_s=0)


class TestMarkovTrace:
    def test_duration_covered(self):
        trace = two_state(duration=100.0)
        assert trace.period_s == pytest.approx(100.0)

    def test_deterministic(self):
        assert two_state(seed=5).to_pairs() == two_state(seed=5).to_pairs()

    def test_seeds_differ(self):
        assert two_state(seed=1).to_pairs() != two_state(seed=2).to_pairs()

    def test_rates_near_state_rates(self):
        trace = two_state(jitter=0.1)
        for _, kbps in trace.to_pairs():
            assert (
                abs(kbps - 1000) <= 100 + 1e-9 or abs(kbps - 200) <= 20 + 1e-9
            ), kbps

    def test_zero_jitter_exact_rates(self):
        trace = two_state(jitter=0.0)
        assert {round(kbps) for _, kbps in trace.to_pairs()} <= {1000, 200}

    def test_shape_validation(self):
        states = [MarkovState(100, 5)]
        with pytest.raises(TraceError):
            markov_trace(states, [[0.5, 0.5]], 10, seed=1)

    def test_row_sum_validation(self):
        states = [MarkovState(100, 5), MarkovState(200, 5)]
        with pytest.raises(TraceError):
            markov_trace(states, [[0.5, 0.4], [0.5, 0.5]], 10, seed=1)

    def test_negative_probability_rejected(self):
        states = [MarkovState(100, 5), MarkovState(200, 5)]
        with pytest.raises(TraceError):
            markov_trace(states, [[1.5, -0.5], [0.5, 0.5]], 10, seed=1)

    def test_empty_states_rejected(self):
        with pytest.raises(TraceError):
            markov_trace([], [], 10, seed=1)

    def test_jitter_range_validated(self):
        with pytest.raises(TraceError):
            two_state(jitter=1.0)


class TestPresets:
    def test_lte_reasonable_envelope(self):
        trace = lte_preset(seed=3)
        assert trace.period_s == pytest.approx(300.0)
        assert 500 <= trace.average_kbps() <= 7000

    def test_hspa_tighter_than_lte(self):
        hspa = hspa_preset(seed=3)
        lte = lte_preset(seed=3)
        assert hspa.average_kbps() < lte.average_kbps()

    def test_presets_drive_a_session(self, content):
        from repro.core.combinations import hsub_combinations
        from repro.core.player import RecommendedPlayer
        from repro.net.link import shared
        from repro.sim.session import simulate

        player = RecommendedPlayer(hsub_combinations(content))
        result = simulate(content, player, shared(hspa_preset(seed=9)))
        assert result.completed
