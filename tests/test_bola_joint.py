"""Joint BOLA over the combination ladder."""

import pytest

from repro.core.bola_joint import JointBolaPlayer
from repro.core.combinations import all_combinations, hsub_combinations
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestQualityFunction:
    def test_empty_buffer_lowest_combo(self, hsub_combos):
        player = JointBolaPlayer(hsub_combos)
        assert player.quality_at(0.0) == 0

    def test_deep_buffer_highest_combo(self, hsub_combos):
        player = JointBolaPlayer(hsub_combos)
        assert player.quality_at(80.0) == len(hsub_combos) - 1

    def test_monotone(self, hsub_combos):
        player = JointBolaPlayer(hsub_combos)
        qualities = [player.quality_at(level / 2.0) for level in range(0, 120)]
        assert qualities == sorted(qualities)


class TestEndToEnd:
    def test_completes_and_conforms(self, content, hsub_combos):
        player = JointBolaPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_joint_decisions_pair_media(self, content, hsub_combos):
        result = simulate(
            content, JointBolaPlayer(hsub_combos), shared(constant(900.0))
        )
        allowed = set(hsub_combos.names)
        for _, video_id, audio_id in result.selected_combinations():
            assert f"{video_id}+{audio_id}" in allowed

    def test_balanced_buffers(self, content, hsub_combos):
        result = simulate(
            content, JointBolaPlayer(hsub_combos), shared(constant(900.0))
        )
        assert result.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6

    def test_quality_rises_with_bandwidth(self, content, hsub_combos):
        low = simulate(content, JointBolaPlayer(hsub_combos), shared(constant(500.0)))
        high = simulate(
            content, JointBolaPlayer(hsub_combos), shared(constant(4000.0))
        )
        assert high.time_weighted_bitrate_kbps(V) > low.time_weighted_bitrate_kbps(V)

    def test_buffer_based_recovery_under_starvation(self, content, hsub_combos):
        # Pure buffer control degrades gracefully on a starved link: it
        # sinks to the lowest combination rather than oscillating.
        result = simulate(
            content, JointBolaPlayer(hsub_combos), shared(constant(260.0))
        )
        usage = result.track_usage(V)
        assert max(usage, key=usage.get) == "V1"

    def test_works_over_all_combinations_too(self, content):
        combos = all_combinations(content)
        result = simulate(content, JointBolaPlayer(combos), shared(constant(900.0)))
        assert result.completed
