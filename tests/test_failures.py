"""Transient request-failure injection and retry behaviour."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import SimulationError, TraceError
from repro.media.tracks import MediaType
from repro.net.failures import FailureModel, NoFailures
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.fixed import FixedTracksPlayer
from repro.sim.session import SessionConfig, simulate

from tests.test_session import flat_content

V = MediaType.VIDEO


class TestFailureModel:
    def test_zero_probability_never_fails(self):
        model = FailureModel(0.0, seed=1)
        assert all(model.next_request() is None for _ in range(200))

    def test_certain_probability_always_fails(self):
        model = FailureModel(1.0, seed=1)
        verdicts = [model.next_request() for _ in range(50)]
        assert all(v is not None for v in verdicts)
        assert all(0 <= v.fraction < 0.9 for v in verdicts)

    def test_deterministic(self):
        a = [FailureModel(0.3, seed=7).next_request() for _ in range(100)]
        b = [FailureModel(0.3, seed=7).next_request() for _ in range(100)]
        assert a == b

    def test_rate_approximates_probability(self):
        model = FailureModel(0.25, seed=3)
        failures = sum(1 for _ in range(2000) if model.next_request() is not None)
        assert 0.2 < failures / 2000 < 0.3

    def test_validation(self):
        with pytest.raises(TraceError):
            FailureModel(1.5)
        with pytest.raises(TraceError):
            FailureModel(0.5, max_fraction=0.0)

    def test_no_failures_shortcut(self):
        assert NoFailures().next_request() is None


class TestSessionWithFailures:
    def test_session_completes_despite_failures(self):
        content = flat_content(n_chunks=10)
        config = SessionConfig(failure_model=FailureModel(0.3, seed=5))
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(2000.0)), config
        )
        assert result.completed
        assert len(result.failures) > 0
        # Every chunk is still downloaded exactly once (the successful try).
        for medium in (V, MediaType.AUDIO):
            indices = [r.chunk_index for r in result.downloads_of(medium)]
            assert indices == list(range(10))

    def test_failures_cost_time(self):
        content = flat_content(n_chunks=10)
        clean = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(300.0))
        )
        flaky = simulate(
            content,
            FixedTracksPlayer("V1", "A1"),
            shared(constant(300.0)),
            SessionConfig(failure_model=FailureModel(0.4, seed=9)),
        )
        assert flaky.ended_at_s > clean.ended_at_s

    def test_failure_records_have_partial_bytes(self):
        content = flat_content(n_chunks=10)
        config = SessionConfig(failure_model=FailureModel(0.4, seed=11))
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(2000.0)), config
        )
        for failure in result.failures:
            assert 0 <= failure.bits_done < content.chunk("V1", 0).size_bits * 1.01

    def test_pathological_model_detected(self):
        content = flat_content(n_chunks=3)
        config = SessionConfig(failure_model=FailureModel(1.0, seed=2))
        with pytest.raises(SimulationError):
            simulate(
                content,
                FixedTracksPlayer("V1", "A1"),
                shared(constant(2000.0)),
                config,
            )

    def test_no_failure_model_is_clean(self):
        content = flat_content(n_chunks=6)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(2000.0))
        )
        assert result.failures == []

    def test_adaptive_player_survives_failures(self, content, hsub_combos):
        config = SessionConfig(failure_model=FailureModel(0.15, seed=3))
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(1200.0)), config)
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_failure_backs_off_working_point(self, content, hsub_combos):
        """Failures above the bottom rung step the working point down
        for subsequent positions, without breaking pairing conformance."""
        config = SessionConfig(failure_model=FailureModel(0.3, seed=21))
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(1500.0)), config)
        assert result.completed
        assert player.failure_downshifts >= 1
        # Conformance survives every retry decision.
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_failure_reaction_lowers_quality_vs_clean_run(self, content, hsub_combos):
        clean = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(1500.0))
        )
        flaky = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(constant(1500.0)),
            SessionConfig(failure_model=FailureModel(0.3, seed=21)),
        )
        assert flaky.time_weighted_bitrate_kbps(V) <= (
            clean.time_weighted_bitrate_kbps(V) + 1e-6
        )

    def test_failed_attempts_do_not_feed_estimators(self, content, hsub_combos):
        """Only completed transfers reach on_chunk_complete, so a killed
        request cannot poison the bandwidth estimate."""
        config = SessionConfig(failure_model=FailureModel(0.3, seed=5))
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(1200.0)), config)
        estimates = [e.kbps for e in result.estimate_timeline]
        assert estimates and max(estimates) < 1500.0
