"""End-to-end session mechanics with a deterministic fixed player."""

import math

import pytest

from repro.errors import PlayerError, SimulationError
from repro.media.chunks import ChunkTable
from repro.media.content import Content
from repro.media.tracks import MediaType, audio_track, make_ladder, video_track
from repro.net.link import SeparatePaths, shared
from repro.net.traces import constant, from_pairs
from repro.players.base import BasePlayer
from repro.players.fixed import FixedTracksPlayer
from repro.sim.decisions import Download
from repro.sim.session import Session, SessionConfig, simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


def flat_content(video_kbps=100.0, audio_kbps=48.0, n_chunks=4, duration_s=5.0):
    """CBR content whose chunk sizes are exactly rate x duration."""
    video = video_track("V1", video_kbps, video_kbps)
    audio = audio_track("A1", audio_kbps, audio_kbps, audio_kbps)
    table = ChunkTable(
        duration_s,
        {
            "V1": [video_kbps * 1000 * duration_s] * n_chunks,
            "A1": [audio_kbps * 1000 * duration_s] * n_chunks,
        },
    )
    return Content(
        name="flat",
        video=make_ladder(MediaType.VIDEO, [video]),
        audio=make_ladder(MediaType.AUDIO, [audio]),
        chunk_table=table,
    )


class TestHappyPath:
    def test_completes_with_exact_timing(self):
        content = flat_content()
        player = FixedTracksPlayer("V1", "A1")
        result = simulate(content, player, shared(constant(1000.0)))
        assert result.completed
        # Balanced alternation: V0 (500 kb @ 1 Mbps = 0.5 s), A0 (240 kb
        # = 0.24 s) -> startup at 0.74 s, playback 20 s -> end at 20.74.
        assert result.startup_delay_s == pytest.approx(0.74)
        assert result.ended_at_s == pytest.approx(20.74)
        assert result.n_stalls == 0

    def test_download_order_alternates(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        order = [(r.medium, r.chunk_index) for r in result.downloads]
        assert order == [
            (V, 0), (A, 0), (V, 1), (A, 1), (V, 2), (A, 2), (V, 3), (A, 3),
        ]

    def test_all_chunks_downloaded_once(self):
        content = flat_content(n_chunks=7)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        for medium in (V, A):
            indices = [r.chunk_index for r in result.downloads_of(medium)]
            assert indices == list(range(7))

    def test_throughput_records(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        video_record = result.downloads_of(V)[0]
        assert video_record.throughput_kbps == pytest.approx(1000.0)
        assert video_record.duration_s == pytest.approx(0.5)

    def test_unbalanced_concurrent_split(self):
        content = flat_content()
        player = FixedTracksPlayer("V1", "A1", balanced=False)
        result = simulate(content, player, shared(constant(1000.0)))
        assert result.completed
        # First chunks download concurrently at 500 kbps each: the audio
        # chunk (240 kb) finishes at 0.48 s.
        audio_first = result.downloads_of(A)[0]
        assert audio_first.completed_at == pytest.approx(0.48)


class TestStalling:
    def test_underprovisioned_link_stalls(self):
        content = flat_content(n_chunks=8)
        # Consumption is 148 kbps; an 80 kbps link must rebuffer.
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(80.0)))
        assert result.completed
        assert result.n_stalls >= 1
        assert result.total_rebuffer_s > 0
        assert result.ended_at_s > content.duration_s

    def test_stall_intervals_are_disjoint_and_ordered(self):
        content = flat_content(n_chunks=8)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(80.0)))
        for stall in result.stalls:
            assert stall.end_s is not None and stall.end_s >= stall.start_s
        for first, second in zip(result.stalls, result.stalls[1:]):
            assert second.start_s >= first.end_s

    def test_playback_time_conservation(self):
        content = flat_content(n_chunks=8)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(80.0)))
        # end = startup + content duration + total rebuffering (exactly).
        assert result.ended_at_s == pytest.approx(
            result.startup_delay_s + content.duration_s + result.total_rebuffer_s
        )

    def test_fast_link_no_stalls(self):
        content = flat_content(n_chunks=8)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0)))
        assert result.n_stalls == 0


class TestNetworkVariants:
    def test_rtt_delays_completion(self):
        content = flat_content()
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0), rtt_s=0.1)
        )
        video_first = result.downloads_of(V)[0]
        assert video_first.completed_at == pytest.approx(0.6)  # 0.1 rtt + 0.5

    def test_rtt_dead_time_has_no_bits(self):
        content = flat_content()
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0), rtt_s=0.1)
        )
        video_first = result.downloads_of(V)[0]
        assert all(s.start_s >= 0.1 - 1e-9 for s in video_first.segments)

    def test_separate_paths(self):
        content = flat_content()
        network = SeparatePaths(
            video_trace=constant(1000.0), audio_trace=constant(100.0)
        )
        result = simulate(
            content, FixedTracksPlayer("V1", "A1", balanced=False), network
        )
        assert result.completed
        video_first = result.downloads_of(V)[0]
        audio_first = result.downloads_of(A)[0]
        assert video_first.throughput_kbps == pytest.approx(1000.0)
        assert audio_first.throughput_kbps == pytest.approx(100.0)

    def test_trace_change_mid_download(self):
        content = flat_content(n_chunks=1)
        # 250 kb of the 500 kb video chunk at 1000 kbps (0.25 s of the
        # 0.5 s trace phase)... then the link drops to 100 kbps.
        trace = from_pairs([(0.25, 1000.0), (100.0, 100.0)], loop=False)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(trace))
        video_first = result.downloads_of(V)[0]
        # 250 kb at 1000 kbps + 250 kb at 100 kbps = 0.25 + 2.5 s.
        assert video_first.completed_at == pytest.approx(2.75)
        assert len(video_first.segments) == 2


class TestSharedTraceObject:
    """One trace object feeding multiple consumers must behave exactly
    like private copies: the trace is immutable and every link model
    holds its own TraceCursor, so no query order can leak state."""

    PAIRS = [(0.4, 1200.0), (0.6, 300.0), (0.5, 2000.0)]

    def _result_key(self, result):
        return [
            (r.medium, r.chunk_index, r.started_at, r.completed_at)
            for r in result.downloads
        ]

    def test_two_sessions_over_one_trace_object(self):
        # Session A leaves its cursor deep in the trace; session B must
        # start from t=0 unaffected, byte-identical to a fresh trace.
        trace = from_pairs(self.PAIRS)
        content = flat_content(n_chunks=6)

        def run(t):
            return simulate(content, FixedTracksPlayer("V1", "A1"), shared(t))

        a_shared = run(trace)
        b_shared = run(trace)
        fresh = run(from_pairs(self.PAIRS))
        assert self._result_key(a_shared) == self._result_key(fresh)
        assert self._result_key(b_shared) == self._result_key(fresh)
        assert b_shared.ended_at_s == fresh.ended_at_s

    def test_separate_paths_sharing_one_trace_between_media(self):
        # The audio and video lanes interleave queries at different
        # times *within* one session — the tightest interleaving the
        # kernel produces. Same object for both lanes must equal two
        # private copies.
        trace = from_pairs(self.PAIRS)
        content = flat_content(n_chunks=6)
        one_object = simulate(
            content,
            FixedTracksPlayer("V1", "A1", balanced=False),
            SeparatePaths(video_trace=trace, audio_trace=trace),
        )
        two_copies = simulate(
            content,
            FixedTracksPlayer("V1", "A1", balanced=False),
            SeparatePaths(
                video_trace=from_pairs(self.PAIRS),
                audio_trace=from_pairs(self.PAIRS),
            ),
        )
        assert self._result_key(one_object) == self._result_key(two_copies)
        assert one_object.ended_at_s == two_copies.ended_at_s


class TestBufferCaps:
    def test_buffer_target_paces_downloads(self):
        content = flat_content(n_chunks=20)
        player = FixedTracksPlayer("V1", "A1", buffer_target_s=10.0)
        session = Session(content, player, shared(constant(10_000.0)))
        result = session.run()
        assert result.completed
        # The buffer may overshoot by at most one chunk above the target.
        max_level = max(s.video_level_s for s in result.buffer_timeline)
        assert max_level <= 10.0 + content.chunk_duration_s + 1e-6

    def test_buffer_samples_are_consistent(self):
        content = flat_content(n_chunks=10)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(500.0)))
        for sample in result.buffer_timeline:
            assert sample.video_level_s >= -1e-9
            assert sample.audio_level_s >= -1e-9


class _WrongMediumPlayer(BasePlayer):  # lint: allow[POLICY-MISSING-FAILURE-HOOK]
    def choose_next(self, medium, ctx):
        return Download(track_id="A1" if medium is V else "V1")  # lint: allow[POLICY-DECISION-TYPE]


class _GarbagePlayer(BasePlayer):  # lint: allow[POLICY-MISSING-FAILURE-HOOK]
    def choose_next(self, medium, ctx):
        return "download please"  # lint: allow[POLICY-DECISION-TYPE]


class TestErrorHandling:
    def test_wrong_medium_track_rejected(self):
        content = flat_content()
        with pytest.raises(PlayerError):
            simulate(content, _WrongMediumPlayer(), shared(constant(1000.0)))

    def test_garbage_decision_rejected(self):
        content = flat_content()
        with pytest.raises(PlayerError):
            simulate(content, _GarbagePlayer(), shared(constant(1000.0)))

    def test_event_cap(self):
        content = flat_content(n_chunks=20)
        config = SessionConfig(max_events=3)
        with pytest.raises(SimulationError):
            simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)), config)

    def test_dead_link_deadlocks_cleanly(self):
        content = flat_content()
        with pytest.raises(SimulationError):
            simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(0.0)))

    def test_sim_time_cutoff_marks_incomplete(self):
        content = flat_content(n_chunks=8)
        config = SessionConfig(max_sim_time_s=3.0)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(80.0)), config
        )
        assert not result.completed


class TestResultAccessors:
    def test_selected_combinations(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        assert result.selected_combinations() == [
            (0, "V1", "A1"),
            (1, "V1", "A1"),
            (2, "V1", "A1"),
            (3, "V1", "A1"),
        ]
        assert result.distinct_combinations() == ["V1+A1"]

    def test_track_usage_and_switches(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        assert result.track_usage(V) == {"V1": 4}
        assert result.switch_count(V) == 0

    def test_summary_keys(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        summary = result.summary()
        for key in (
            "completed",
            "startup_delay_s",
            "n_stalls",
            "total_rebuffer_s",
            "video_kbps",
            "audio_kbps",
            "combinations",
        ):
            assert key in summary

    def test_to_dict_is_json_serializable(self):
        import json

        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        data = json.loads(json.dumps(result.to_dict()))
        assert data["n_chunks"] == 4
        assert len(data["downloads"]) == 8
        assert data["downloads"][0]["medium"] == "video"
        assert data["summary"]["completed"] is True
        assert "buffer_timeline" in data

    def test_to_dict_without_timelines(self):
        content = flat_content()
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        data = result.to_dict(include_timelines=False)
        assert "buffer_timeline" not in data
        assert "estimate_timeline" not in data

    def test_time_weighted_bitrates(self):
        content = flat_content(video_kbps=100, audio_kbps=48)
        result = simulate(content, FixedTracksPlayer("V1", "A1"), shared(constant(1000.0)))
        assert result.time_weighted_bitrate_kbps(V) == pytest.approx(100.0)
        assert result.time_weighted_bitrate_kbps(A) == pytest.approx(48.0)
