"""Property tests: replayed metrics are byte-identical, tears are safe.

The record/replay contract is exact, not approximate: for *any* seeded
player x trace combination, re-deriving QoE from the event log must
reproduce the live run's metrics to the last bit. Hypothesis walks a
grid of players, trace shapes, and seeds to probe that claim, and
separately tears logs at arbitrary byte offsets to check the framing
never turns a crash into silent corruption.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.corpus import drama_show
from repro.net.link import shared
from repro.net.resilience import ResilienceModel, RetryPolicy
from repro.net.traces import constant, random_walk, square_wave
from repro.qoe.metrics import DEFAULT_WEIGHTS, compute_qoe
from repro.replay import EventRecorder, replay_session, scan_events
from repro.runner.jobs import PlayerSpec
from repro.sim.session import Session, SessionConfig

CONTENT = drama_show()

PLAYERS = ["shaka", "dashjs", "exoplayer-dash", "exoplayer-hls", "recommended"]


def make_trace(shape: str, seed: int):
    if shape == "constant":
        return constant(800.0 + 400.0 * (seed % 3))
    if shape == "square":
        return square_wave(500.0 + 100.0 * (seed % 2), 2600.0, 12.0 + seed)
    return random_walk(1500.0, seed=seed)


def run_recorded(tmp_path, player_name, shape, seed, failures=False):
    path = str(tmp_path / f"{player_name}-{shape}-{seed}.events.jsonl")
    player = PlayerSpec(player_name).build(CONTENT)
    network = shared(make_trace(shape, seed), rtt_s=0.05)
    kwargs = {}
    if failures:
        kwargs["failure_model"] = ResilienceModel(0.2, seed=seed)
        kwargs["retry_policy"] = RetryPolicy()
    config = SessionConfig(observer=EventRecorder(path), **kwargs)
    result = Session(CONTENT, player, network, config).run()
    return result, path


class TestReplayProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        player_name=st.sampled_from(PLAYERS),
        shape=st.sampled_from(["constant", "square", "walk"]),
        seed=st.integers(min_value=0, max_value=7),
    )
    def test_replayed_metrics_byte_identical(
        self, tmp_path, player_name, shape, seed
    ):
        result, path = run_recorded(tmp_path, player_name, shape, seed)
        replayed = replay_session(path)
        assert replayed.intact and replayed.has_verdict
        assert replayed.result.summary() == result.summary()
        live = compute_qoe(result, CONTENT, DEFAULT_WEIGHTS)
        assert replayed.qoe().as_dict() == live.as_dict()

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        player_name=st.sampled_from(["shaka", "dashjs"]),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_replay_with_failures_byte_identical(self, tmp_path, player_name, seed):
        result, path = run_recorded(
            tmp_path, player_name, "square", seed, failures=True
        )
        replayed = replay_session(path)
        assert replayed.result.summary() == result.summary()
        assert replayed.result.failures == result.failures


class TestTornLogProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(fraction=st.floats(min_value=0.01, max_value=0.999))
    def test_any_tear_yields_trustworthy_prefix(self, tmp_path, fraction):
        _, path = run_recorded(tmp_path, "shaka", "constant", 0)
        whole = scan_events(path)
        size = os.path.getsize(path)
        torn = str(tmp_path / "torn.jsonl")
        with open(path, "rb") as f:
            data = f.read(max(1, int(size * fraction)))
        with open(torn, "wb") as f:
            f.write(data)
        scan = scan_events(torn)
        # A tear is never corruption, and the surviving prefix is exactly
        # the first N events of the untorn log.
        assert scan.damage in (None, "truncated")
        assert scan.events == whole.events[: len(scan.events)]


def _load_oracle_module():
    import importlib.util

    path = os.path.join(
        os.path.dirname(__file__), "fixtures", "eventlogs", "regenerate.py"
    )
    spec = importlib.util.spec_from_file_location("eventlog_oracle", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_ORACLE = _load_oracle_module()
_ORACLE_JOBS = _ORACLE.fixture_jobs()


class TestPinnedOracleProperty:
    """The kernel-equivalence oracle: pre-rewrite logs, current engine.

    The logs under ``tests/fixtures/eventlogs/`` were recorded by the
    pre-overhaul kernel. Equivalence is enforced, not hoped for: for
    any pinned job, re-recording with the current engine must produce
    the byte-for-byte identical event stream. Hypothesis samples the
    grid so a shrunk counterexample names the offending cell directly.
    """

    @settings(
        max_examples=len(_ORACLE_JOBS),
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(job_index=st.integers(min_value=0, max_value=len(_ORACLE_JOBS) - 1))
    def test_prerewrite_log_rerecords_byte_identically(
        self, tmp_path, job_index
    ):
        from repro.replay.recorder import record_path
        from repro.sim.session import Session as _Session

        job = _ORACLE_JOBS[job_index]
        pinned = record_path(_ORACLE.FIXTURE_DIR, job.key())
        assert os.path.exists(pinned), f"missing oracle log for {job.label()}"
        fresh = record_path(str(tmp_path), job.key())
        recorder = EventRecorder(
            fresh,
            extra_meta={
                "job": job.spec_dict(),
                "key": job.key(),
                "label": job.label(),
            },
        )
        content, player, network, config = job.build(observer=recorder)
        _Session(content, player, network, config).run()

        old = scan_events(pinned)
        new = scan_events(fresh)
        assert old.damage is None and new.damage is None
        assert new.events == old.events, job.label()
