"""repro.chaos + the hardened runner engine.

The contracts under test are the ISSUE-4 guarantees: a grid run under
seeded chaos (worker SIGKILL, hang past deadline, mid-job raise, torn
cache entry) completes with zero lost jobs and rows *byte-identical*
to the clean serial run; an interrupted sweep resumes recomputing only
incomplete cells; jobs that exhaust retries surface as failed outcomes
instead of aborting the grid; and every chaos-surviving session still
obeys the physical invariants (byte ledger, non-negative buffers,
terminal verdict).
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.chaos import (
    ChaosError,
    ChaosSchedule,
    FaultKind,
    check_outcomes,
    check_session,
)
from repro.media.tracks import MediaType
from repro.runner import (
    EngineStats,
    GridRunner,
    PlayerSpec,
    ResultCache,
    SimulationJob,
    TraceSpec,
    run_jobs,
    runner_options,
)
from repro.sim.records import (
    BufferSample,
    DownloadRecord,
    SessionResult,
    StallEvent,
)

#: Pool-breaking-but-fast kinds: everything except HANG, which needs a
#: watchdog deadline and costs ~timeout seconds per injection.
FAST_KINDS = (FaultKind.KILL, FaultKind.RAISE, FaultKind.TRUNCATE)


def cheap_grid(n=4):
    """Heterogeneous one-second-ish jobs across link rates."""
    rates = (700.0, 1000.0, 1500.0, 2000.0, 2500.0, 900.0, 1200.0, 1800.0)
    return [
        SimulationJob(
            player=PlayerSpec("recommended"),
            trace=TraceSpec.constant(rates[i % len(rates)]),
            seed=i // len(rates),
        )
        for i in range(n)
    ]


def fingerprints(outcomes):
    return [o.result.to_dict() for o in outcomes]


class TestChaosSchedule:
    def test_fault_plan_is_deterministic_and_picklable(self):
        a = ChaosSchedule(seed=7)
        b = pickle.loads(pickle.dumps(ChaosSchedule(seed=7)))
        coords = [(f"job{i}", attempt) for i in range(50) for attempt in (1, 2)]
        assert [a.fault_for(k, n) for k, n in coords] == [
            b.fault_for(k, n) for k, n in coords
        ]

    def test_only_eligible_attempts_fault(self):
        schedule = ChaosSchedule(probability=1.0, fault_attempts=1, seed=0)
        assert schedule.fault_for("k", 1) is not None
        assert schedule.fault_for("k", 2) is None
        assert schedule.fault_for("k", 3) is None

    def test_probability_zero_never_faults(self):
        schedule = ChaosSchedule(probability=0.0, seed=3)
        assert all(schedule.fault_for(f"j{i}", 1) is None for i in range(100))

    def test_all_kinds_are_reachable(self):
        schedule = ChaosSchedule(probability=1.0, seed=0)
        drawn = {schedule.fault_for(f"job{i}", 1) for i in range(200)}
        assert drawn == set(FaultKind)

    @pytest.mark.parametrize(
        "spec,kinds,p,attempts,seed,hang",
        [
            ("all", tuple(FaultKind), 1.0, 1, 0, 30.0),
            ("kill-hang", (FaultKind.KILL, FaultKind.HANG), 1.0, 1, 0, 30.0),
            (
                "raise:p=0.5,seed=3,attempts=2,hang=5",
                (FaultKind.RAISE,),
                0.5,
                2,
                3,
                5.0,
            ),
        ],
    )
    def test_spec_grammar(self, spec, kinds, p, attempts, seed, hang):
        schedule = ChaosSchedule.from_spec(spec)
        assert schedule.kinds == kinds
        assert schedule.probability == p
        assert schedule.fault_attempts == attempts
        assert schedule.seed == seed
        assert schedule.hang_s == hang

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "segfault",
            "kill-explode",
            "kill:p",
            "kill:volume=11",
            "kill:p=loud",
            "kill:p=1.5",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ExperimentError):
            ChaosSchedule.from_spec(bad)

    def test_spec_round_trips(self):
        schedule = ChaosSchedule(
            kinds=(FaultKind.KILL, FaultKind.RAISE),
            probability=0.25,
            fault_attempts=2,
            seed=9,
            hang_s=12.0,
        )
        assert ChaosSchedule.from_spec(schedule.spec()) == schedule


class TestInvariants:
    def test_clean_session_passes(self):
        (outcome,) = run_jobs([cheap_grid(1)[0]])
        assert check_session(outcome.result) == []

    def test_negative_buffer_detected(self):
        result = SessionResult(60.0, 2.0, 30)
        result.ended_at_s = 61.0
        result.completed = True
        result.buffer_timeline.append(BufferSample(1.0, -0.5, 2.0))
        names = {v.invariant for v in check_session(result)}
        assert "non-negative-buffers" in names

    def test_missing_verdict_detected(self):
        unstamped = SessionResult(60.0, 2.0, 30)
        assert "terminates" in {v.invariant for v in check_session(unstamped)}
        # Incomplete, no reason, ended well before the sim-time
        # ceiling: the session vanished without a verdict.
        vanished = SessionResult(60.0, 2.0, 30)
        vanished.ended_at_s = 10.0
        assert "terminates" in {v.invariant for v in check_session(vanished)}
        # The same early end *with* a degradation reason is legitimate.
        degraded = SessionResult(60.0, 2.0, 30)
        degraded.ended_at_s = 10.0
        degraded.termination_reason = "retry budget exhausted"
        assert "terminates" not in {v.invariant for v in check_session(degraded)}

    def test_malformed_stalls_and_downloads_detected(self):
        result = SessionResult(60.0, 2.0, 30)
        result.ended_at_s = 61.0
        result.completed = True
        result.stalls.append(StallEvent(start_s=5.0, end_s=3.0))
        result.stalls.append(StallEvent(start_s=50.0, end_s=None))
        result.add_download(
            DownloadRecord(
                medium=MediaType.VIDEO,
                track_id="V1",
                chunk_index=45,
                size_bits=1000.0,
                started_at=5.0,
                completed_at=4.0,
            )
        )
        names = [v.invariant for v in check_session(result)]
        assert names.count("stalls-well-formed") == 2
        assert names.count("downloads-well-formed") == 2

    def test_broken_ledger_detected(self):
        class TornResult(SessionResult):
            def byte_accounting(self):
                ledger = super().byte_accounting()
                ledger["reconciles"] = False
                return ledger

        result = TornResult(60.0, 2.0, 30)
        result.ended_at_s = 61.0
        result.completed = True
        assert "byte-accounting" in {v.invariant for v in check_session(result)}

    def test_check_outcomes_tags_the_job_and_skips_failures(self):
        job = cheap_grid(1)[0]
        bad = SessionResult(60.0, 2.0, 30)  # no end stamp

        class Outcome:
            def __init__(self, job, result):
                self.job, self.result = job, result

        violations = check_outcomes([Outcome(job, bad), Outcome(job, None)])
        assert len(violations) == 1
        assert violations[0].job == job.key()[:12]


class TestCrashIsolation:
    def test_raise_fault_is_retried_with_cumulative_wall_time(self):
        jobs = cheap_grid(2)
        stats = EngineStats()
        chaos = ChaosSchedule(kinds=(FaultKind.RAISE,), probability=1.0, seed=0)
        outcomes = run_jobs(jobs, workers=2, retries=2, chaos=chaos, stats=stats)
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert outcome.attempts == 2
            assert len(outcome.attempt_times) == 2
            # Satellite: wall time is the cumulative cost of every
            # attempt, with the per-attempt breakdown preserved.
            assert outcome.wall_time_s == pytest.approx(
                sum(outcome.attempt_times)
            )
        assert stats.job_failures == 2
        assert stats.retried_jobs == 2

    def test_worker_sigkill_costs_only_that_job(self):
        jobs = cheap_grid(3)
        stats = EngineStats()
        chaos = ChaosSchedule(kinds=(FaultKind.KILL,), probability=1.0, seed=1)
        outcomes = run_jobs(jobs, workers=2, retries=3, chaos=chaos, stats=stats)
        assert all(o.ok for o in outcomes)  # zero lost jobs
        assert stats.pool_rebuilds >= 1
        assert stats.worker_crashes >= 1
        clean = run_jobs(jobs, workers=1)
        assert fingerprints(outcomes) == fingerprints(clean)

    def test_exhausted_retries_surface_failure_without_aborting_grid(self):
        jobs = cheap_grid(3)
        doomed_key = jobs[0].key()

        # Fault every attempt of every job, but keep two jobs clean by
        # probability: seed picked so only some jobs fault. Simpler and
        # fully deterministic: fault all attempts, retries=0, then
        # every job fails — the grid itself must still return.
        chaos = ChaosSchedule(
            kinds=(FaultKind.RAISE,), probability=1.0, fault_attempts=99, seed=2
        )
        stats = EngineStats()
        outcomes = run_jobs(jobs, workers=2, retries=1, chaos=chaos, stats=stats)
        assert len(outcomes) == len(jobs)
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.result is None
            assert outcome.attempts == 2
            assert "ChaosError" in outcome.error
        assert stats.failed_jobs == 3
        assert doomed_key == jobs[0].key()  # specs untouched by the run

    def test_grid_runner_results_raises_on_failed_jobs(self):
        chaos = ChaosSchedule(
            kinds=(FaultKind.RAISE,), probability=1.0, fault_attempts=99, seed=0
        )
        runner = GridRunner(workers=2, job_retries=0, chaos=chaos)
        with pytest.raises(ExperimentError, match="failed after"):
            runner.results(cheap_grid(2))

    def test_chaos_requires_a_pool(self):
        with pytest.raises(ExperimentError, match="workers >= 2"):
            run_jobs(cheap_grid(1), workers=1, chaos=ChaosSchedule())

    def test_chaos_error_is_a_simulation_error(self):
        from repro.errors import SimulationError

        assert issubclass(ChaosError, SimulationError)


class TestWatchdog:
    def test_hung_worker_is_killed_and_job_requeued(self):
        jobs = cheap_grid(2)
        stats = EngineStats()
        chaos = ChaosSchedule(
            kinds=(FaultKind.HANG,), probability=1.0, seed=0, hang_s=60.0
        )
        started = time.monotonic()
        outcomes = run_jobs(
            jobs, workers=2, timeout_s=1.0, retries=2, chaos=chaos, stats=stats
        )
        elapsed = time.monotonic() - started
        assert all(o.ok for o in outcomes)
        assert stats.watchdog_kills >= 1
        # The 60 s hangs must have been cut short by the ~1 s deadline.
        assert elapsed < 30.0
        for outcome in outcomes:
            assert outcome.attempts == 2
            assert outcome.attempt_times[0] >= 1.0  # the hung attempt
        clean = run_jobs(jobs, workers=1)
        assert fingerprints(outcomes) == fingerprints(clean)

    def test_deadline_generous_enough_never_fires(self):
        jobs = cheap_grid(2)
        stats = EngineStats()
        outcomes = run_jobs(jobs, workers=2, timeout_s=120.0, stats=stats)
        assert all(o.ok for o in outcomes)
        assert stats.watchdog_kills == 0
        assert stats.pool_rebuilds == 0


class TestDeterminismUnderChaos:
    """Satellite: same jobs + same chaos seed under workers=2 yield
    SessionResult rows identical to the clean workers=1 run once
    retries succeed — chaos must be invisible in the science."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_chaotic_grid_matches_clean_serial_run(self, tmp_path_factory, seed):
        jobs = cheap_grid(3)
        clean = run_jobs(jobs, workers=1)
        cache_dir = str(
            tmp_path_factory.mktemp("chaos-cache") / f"seed-{seed}"
        )
        chaos = ChaosSchedule(kinds=FAST_KINDS, probability=1.0, seed=seed)
        stats = EngineStats()
        chaotic = run_jobs(
            jobs,
            workers=2,
            cache=ResultCache(cache_dir),
            retries=3,
            chaos=chaos,
            stats=stats,
        )
        assert [o.job for o in chaotic] == jobs  # input order preserved
        assert all(o.ok for o in chaotic)  # zero lost jobs
        assert fingerprints(chaotic) == fingerprints(clean)  # identical rows
        assert check_outcomes(chaotic) == []  # invariants hold
        assert stats.lost_attempts >= 1  # chaos actually struck

    def test_same_seed_twice_same_recovery_same_rows(self, tmp_path):
        jobs = cheap_grid(2)
        chaos = ChaosSchedule(kinds=(FaultKind.RAISE,), probability=1.0, seed=5)
        first = run_jobs(jobs, workers=2, retries=2, chaos=chaos)
        second = run_jobs(jobs, workers=2, retries=2, chaos=chaos)
        assert fingerprints(first) == fingerprints(second)
        assert [o.attempts for o in first] == [o.attempts for o in second]


class TestCheckpointResume:
    def test_completed_prefix_is_never_recomputed(self, tmp_path):
        """Resume contract: after an interruption, only incomplete
        cells are simulated — the completed prefix is all cache hits."""
        jobs = cheap_grid(5)
        prefix = 2
        warm = ResultCache(str(tmp_path))
        run_jobs(jobs[:prefix], workers=1, cache=warm)
        assert warm.entry_count() == prefix

        resumed_cache = ResultCache(str(tmp_path))
        outcomes = run_jobs(jobs, workers=2, cache=resumed_cache)
        assert all(o.ok for o in outcomes)
        assert resumed_cache.stats.hits == prefix  # zero recomputation
        assert resumed_cache.stats.misses == len(jobs) - prefix
        assert [o.cached for o in outcomes[:prefix]] == [True] * prefix
        assert fingerprints(outcomes) == fingerprints(run_jobs(jobs, workers=1))

    def test_sigkilled_driver_resumes_from_checkpoint(self, tmp_path):
        """Kill the *driver* process mid-grid (the CI chaos scenario):
        completed cells must already be on disk, and the resumed run
        must replay them from cache and finish the rest."""
        cache_dir = str(tmp_path / "cache")
        n_jobs = 10
        script = (
            "from repro.runner import run_jobs, ResultCache\n"
            "import test_chaos\n"
            f"jobs = test_chaos.cheap_grid({n_jobs})\n"
            f"run_jobs(jobs, workers=1, cache=ResultCache({cache_dir!r}))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src, os.path.dirname(__file__), env.get("PYTHONPATH", "")]
        )
        driver = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            probe = ResultCache(cache_dir)
            deadline = time.monotonic() + 60.0
            while probe.entry_count() < 2 and time.monotonic() < deadline:
                if driver.poll() is not None:
                    break
                time.sleep(0.01)
            driver.send_signal(signal.SIGKILL)
        finally:
            driver.wait(timeout=30)

        completed = ResultCache(cache_dir).entry_count()
        assert completed >= 2  # the checkpoint stream got that far

        jobs = cheap_grid(n_jobs)
        resumed_cache = ResultCache(cache_dir)
        outcomes = run_jobs(jobs, workers=2, cache=resumed_cache)
        assert all(o.ok for o in outcomes)
        # Zero lost jobs and zero recomputed completed cells: every
        # checkpointed entry is a hit, everything else a miss.
        assert resumed_cache.stats.hits == completed
        assert resumed_cache.stats.misses == n_jobs - completed
        assert fingerprints(outcomes) == fingerprints(run_jobs(jobs, workers=1))

    def test_torn_checkpoint_from_chaos_heals_on_resume(self, tmp_path):
        """TRUNCATE chaos leaves a torn entry and kills the worker;
        the retry's cache re-check must classify it truncated, evict
        it, and re-simulate — never serve torn bytes."""
        jobs = cheap_grid(2)
        cache = ResultCache(str(tmp_path))
        chaos = ChaosSchedule(
            kinds=(FaultKind.TRUNCATE,), probability=1.0, seed=0
        )
        outcomes = run_jobs(jobs, workers=2, cache=cache, retries=2, chaos=chaos)
        assert all(o.ok for o in outcomes)
        # A worker may be torn down by a sibling's pool break before it
        # writes its own torn entry, so the exact count is racy — but
        # every torn entry written must be classified and evicted.
        assert cache.stats.truncated >= 1
        assert cache.stats.evictions == cache.stats.truncated
        assert fingerprints(outcomes) == fingerprints(run_jobs(jobs, workers=1))


class TestGridRunnerChaos:
    def test_params_report_chaos_and_recovery(self, tmp_path):
        chaos = ChaosSchedule(kinds=(FaultKind.RAISE,), probability=1.0, seed=0)
        runner = GridRunner(
            workers=2, cache_dir=str(tmp_path), job_retries=2, chaos=chaos
        )
        jobs = cheap_grid(2)
        results = runner.results(jobs)
        assert len(results) == 2
        params = runner.params()
        assert params["chaos"] == chaos.spec()
        assert params["job_retries"] == 2
        assert params["invariants_checked"] == 2
        assert params["recovery"]["job_failures"] == 2
        assert params["recovery"]["retried_jobs"] == 2
        assert params["cache"]["truncated"] == 0

    def test_event_log_is_written_and_parseable(self, tmp_path):
        log = str(tmp_path / "events.jsonl")
        chaos = ChaosSchedule(
            kinds=(FaultKind.RAISE,), probability=1.0, seed=0, log_path=log
        )
        run_jobs(cheap_grid(2), workers=2, retries=2, chaos=chaos)
        with open(log, "r", encoding="utf-8") as fh:
            events = [json.loads(line) for line in fh]
        kinds = [event["event"] for event in events]
        assert kinds.count("fault") == 2
        assert kinds.count("requeue") == 2
        assert all("job" in e for e in events if e["event"] == "fault")

    def test_experiment_rows_identical_under_chaos(self, tmp_path):
        from repro.experiments import run_experiment

        serial = run_experiment("fluctuation")
        chaos = ChaosSchedule(kinds=FAST_KINDS, probability=1.0, seed=4)
        with runner_options(
            workers=2,
            cache_dir=str(tmp_path),
            job_retries=3,
            chaos=chaos,
        ):
            chaotic = run_experiment("fluctuation")
        assert chaotic.rows == serial.rows
        assert chaotic.notes == serial.notes
        assert [(c.description, c.passed) for c in chaotic.checks] == [
            (c.description, c.passed) for c in serial.checks
        ]
        assert chaotic.params["runner"]["chaos"] == chaos.spec()


class TestChaosCli:
    def test_run_with_chaos_flags(self, tmp_path, capsys):
        from repro.cli import main

        log = str(tmp_path / "chaos.jsonl")
        code = main(
            [
                "run",
                "fluctuation",
                "--jobs",
                "2",
                "--job-retries",
                "3",
                "--chaos",
                "raise:p=1,seed=2",
                "--chaos-log",
                log,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery" in out
        assert os.path.exists(log)

    def test_chaos_without_pool_is_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--jobs >= 2"):
            main(["run", "fluctuation", "--chaos", "kill"])

    def test_job_timeout_flag_threads_through(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "fluctuation", "--jobs", "2", "--job-timeout", "120"]
        )
        assert code == 0
        assert "job_timeout_s" in capsys.readouterr().out
