"""Origin server and CDN cache models."""

import pytest

from repro.errors import MediaError
from repro.media.content import synthetic_content
from repro.net.server import CdnCache, ChunkKey, OriginServer


@pytest.fixture()
def small_content():
    return synthetic_content("tiny", [100, 200], [48, 96], n_chunks=4)


class TestOriginServer:
    def test_demuxed_storage(self, small_content):
        origin = OriginServer(small_content)
        assert origin.storage_bits() == pytest.approx(
            small_content.storage_bits_demuxed()
        )

    def test_muxed_storage(self, small_content):
        origin = OriginServer(small_content, muxed=True)
        assert origin.storage_bits() == pytest.approx(
            small_content.storage_bits_muxed()
        )

    def test_demuxed_keys_are_per_track(self, small_content):
        origin = OriginServer(small_content)
        keys = origin.chunk_key("V1", "A1", 0)
        assert len(keys) == 2
        assert {k.track_ids for k in keys} == {("V1",), ("A1",)}

    def test_muxed_key_is_combined(self, small_content):
        origin = OriginServer(small_content, muxed=True)
        keys = origin.chunk_key("V1", "A1", 0)
        assert len(keys) == 1
        assert keys[0].track_ids == ("V1", "A1")

    def test_muxed_requires_both_tracks(self, small_content):
        origin = OriginServer(small_content, muxed=True)
        with pytest.raises(MediaError):
            origin.chunk_key("V1", None, 0)

    def test_demuxed_single_medium_fetch(self, small_content):
        origin = OriginServer(small_content)
        keys = origin.chunk_key("V1", None, 0)
        assert len(keys) == 1

    def test_fetch_needs_some_track(self, small_content):
        origin = OriginServer(small_content)
        with pytest.raises(MediaError):
            origin.chunk_key(None, None, 0)

    def test_muxed_size_is_sum(self, small_content):
        origin = OriginServer(small_content, muxed=True)
        key = origin.chunk_key("V1", "A1", 0)[0]
        expected = (
            small_content.chunk("V1", 0).size_bits
            + small_content.chunk("A1", 0).size_bits
        )
        assert origin.size_bits(key) == pytest.approx(expected)

    def test_serve_accounts_bytes(self, small_content):
        origin = OriginServer(small_content)
        key = origin.chunk_key("V1", None, 0)[0]
        size = origin.serve(key)
        assert origin.stats.requests == 1
        assert origin.stats.bits_served == size


class TestCdnCache:
    def test_second_fetch_hits(self, small_content):
        cache = CdnCache(OriginServer(small_content), capacity_bits=1e12)
        key = ChunkKey("tiny", ("V1",), 0)
        _, first = cache.fetch(key)
        _, second = cache.fetch(key)
        assert (first, second) == (False, True)
        assert cache.stats.hits == 1
        assert cache.stats.requests == 2

    def test_lru_eviction(self, small_content):
        origin = OriginServer(small_content)
        chunk0 = origin.size_bits(ChunkKey("tiny", ("V1",), 0))
        chunk1 = origin.size_bits(ChunkKey("tiny", ("V1",), 1))
        # Capacity for roughly one chunk: the second insert evicts the first.
        cache = CdnCache(origin, capacity_bits=max(chunk0, chunk1) * 1.2)
        cache.fetch(ChunkKey("tiny", ("V1",), 0))
        cache.fetch(ChunkKey("tiny", ("V1",), 1))
        _, hit = cache.fetch(ChunkKey("tiny", ("V1",), 0))
        assert not hit  # was evicted

    def test_lru_order_refreshed_on_hit(self, small_content):
        origin = OriginServer(small_content)
        sizes = [origin.size_bits(ChunkKey("tiny", ("A1",), i)) for i in range(3)]
        cache = CdnCache(origin, capacity_bits=sum(sizes[:2]) * 1.01)
        cache.fetch(ChunkKey("tiny", ("A1",), 0))
        cache.fetch(ChunkKey("tiny", ("A1",), 1))
        cache.fetch(ChunkKey("tiny", ("A1",), 0))  # refresh 0
        cache.fetch(ChunkKey("tiny", ("A1",), 2))  # evicts 1, not 0
        _, hit0 = cache.fetch(ChunkKey("tiny", ("A1",), 0))
        assert hit0

    def test_oversized_object_bypasses_cache(self, small_content):
        origin = OriginServer(small_content)
        key = ChunkKey("tiny", ("V2",), 0)
        cache = CdnCache(origin, capacity_bits=origin.size_bits(key) / 2)
        cache.fetch(key)
        assert cache.used_bits == 0

    def test_capacity_must_be_positive(self, small_content):
        with pytest.raises(MediaError):
            CdnCache(OriginServer(small_content), capacity_bits=0)

    def test_demuxed_cross_user_video_reuse(self, small_content):
        """The Section-1 CDN argument, end-to-end."""
        origin = OriginServer(small_content)
        cache = CdnCache(origin, capacity_bits=1e12)
        for index in range(small_content.n_chunks):
            cache.fetch_position("V2", "A2", index)  # user A
        stats = [
            cache.fetch_position("V2", "A1", index)  # user B, new audio
            for index in range(small_content.n_chunks)
        ]
        # All video bytes hit; only audio comes from origin.
        for s in stats:
            assert s["hit_bits"] > 0
            assert s["origin_bits"] > 0
            assert s["hit_bits"] + s["origin_bits"] == pytest.approx(s["bits"])
        video_bits = sum(
            small_content.chunk("V2", i).size_bits
            for i in range(small_content.n_chunks)
        )
        assert sum(s["hit_bits"] for s in stats) == pytest.approx(video_bits)

    def test_muxed_cross_user_no_reuse(self, small_content):
        origin = OriginServer(small_content, muxed=True)
        cache = CdnCache(origin, capacity_bits=1e12)
        for index in range(small_content.n_chunks):
            cache.fetch_position("V2", "A2", index)
        stats = [
            cache.fetch_position("V2", "A1", index)
            for index in range(small_content.n_chunks)
        ]
        assert all(s["hit_bits"] == 0 for s in stats)
