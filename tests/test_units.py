"""Unit conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_kbps_to_bps(self):
        assert units.kbps_to_bps(1.0) == 1000.0

    def test_bps_to_kbps(self):
        assert units.bps_to_kbps(1000.0) == 1.0

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(16.0) == 2.0

    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(2.0) == 16.0

    def test_bits_to_kilobytes(self):
        assert units.bits_to_kilobytes(8192.0) == 1.0

    def test_kilobytes_to_bits(self):
        assert units.kilobytes_to_bits(16.0) == 131072.0

    def test_shaka_filter_constant(self):
        # The 16 KB sample filter, in bits, as used by the Shaka model.
        assert units.kilobytes_to_bits(16) == 16 * 1024 * 8

    @given(st.floats(min_value=0.001, max_value=1e9))
    def test_kbps_roundtrip(self, kbps):
        assert units.bps_to_kbps(units.kbps_to_bps(kbps)) == pytest.approx(kbps)

    @given(st.floats(min_value=0.001, max_value=1e12))
    def test_bytes_roundtrip(self, nbytes):
        assert units.bits_to_bytes(units.bytes_to_bits(nbytes)) == pytest.approx(nbytes)


class TestChunkBits:
    def test_basic(self):
        # 100 kbps for 5 s = 500,000 bits.
        assert units.chunk_bits(100, 5) == 500_000.0

    def test_zero_duration(self):
        assert units.chunk_bits(100, 0) == 0.0

    def test_negative_bitrate_rejected(self):
        with pytest.raises(ValueError):
            units.chunk_bits(-1, 5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.chunk_bits(100, -5)


class TestBitrateOf:
    def test_basic(self):
        assert units.bitrate_of(500_000.0, 5.0) == 100.0

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            units.bitrate_of(1000.0, 0.0)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.01, max_value=1e4),
    )
    def test_inverse_of_chunk_bits(self, kbps, duration):
        bits = units.chunk_bits(kbps, duration)
        assert units.bitrate_of(bits, duration) == pytest.approx(kbps)
