"""Parallel lint (`--jobs N`) must be a pure speed knob: identical
findings, identical order, same failure surface as the serial path."""

from pathlib import Path

import pytest

from repro.analysis import AnalyzerConfig, analyze_files
from repro.analysis.engine import AnalysisParseFailure
from repro.analysis.parallel import _partition, analyze_files_parallel

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def load_tree():
    files = {}
    for path in sorted(SRC_REPRO.rglob("*.py")):
        files[str(path.relative_to(SRC_REPRO.parent))] = path.read_text()
    return files


class TestPartition:
    def test_manifests_stay_in_one_batch(self):
        # Cross-manifest HLS rules need every manifest in one worker.
        files = {
            "a.m3u8": "#EXTM3U",
            "b.m3u8": "#EXTM3U",
            "c.mpd": "<MPD/>",
            "x.py": "pass",
            "y.py": "pass",
            "z.py": "pass",
        }
        batches = _partition(files, jobs=3)
        manifest_batches = [
            b for b in batches if any(not n.endswith(".py") for n in b)
        ]
        assert len(manifest_batches) == 1
        names = {n for n in manifest_batches[0] if not n.endswith(".py")}
        assert names == {"a.m3u8", "b.m3u8", "c.mpd"}

    def test_every_file_lands_in_exactly_one_batch(self):
        files = {f"f{i}.py": "pass" for i in range(13)}
        batches = _partition(files, jobs=4)
        seen = [n for batch in batches for n in batch]
        assert sorted(seen) == sorted(files)


class TestParallelMatchesSerial:
    def test_fixture_corpus_identical(self):
        files = {p.name: p.read_text() for p in FIXTURES.glob("*.py")}
        serial = analyze_files(files)
        assert serial  # the bad fixtures guarantee findings to compare
        parallel = analyze_files_parallel(files, jobs=4)
        assert parallel == serial

    def test_src_tree_identical(self):
        files = load_tree()
        assert len(files) > 50
        serial = analyze_files(files)
        parallel = analyze_files_parallel(files, jobs=4)
        assert parallel == serial

    def test_cross_module_units_survive_partitioning(self):
        # The two halves of an interprocedural finding are forced into
        # different workers; the shared program index must still connect
        # them.
        files = {
            "sender.py": "def send(timeout_s):\n    return timeout_s\n",
            "caller.py": (
                "from sender import send\n"
                "def f(grace_ms):\n"
                "    return send(grace_ms)\n"
            ),
        }
        serial = analyze_files(files)
        assert [f.rule for f in serial] == ["UNIT-ARG-MISMATCH"]
        parallel = analyze_files_parallel(files, jobs=2)
        assert parallel == serial

    def test_config_selection_is_honored(self):
        files = {p.name: p.read_text() for p in FIXTURES.glob("*_bad.py")}
        config = AnalyzerConfig(selected=frozenset({"SHARE-MUTABLE-DEFAULT"}))
        serial = analyze_files(files, config)
        parallel = analyze_files_parallel(files, config, jobs=4)
        assert [f.rule for f in serial] == ["SHARE-MUTABLE-DEFAULT"]
        assert parallel == serial

    def test_jobs_one_short_circuits_to_serial(self):
        files = {p.name: p.read_text() for p in FIXTURES.glob("*.py")}
        assert analyze_files_parallel(files, jobs=1) == analyze_files(files)


class TestParallelFailures:
    def test_parse_failure_propagates_with_location(self):
        files = {f"ok{i}.py": "pass\n" for i in range(6)}
        files["broken.py"] = "def f(:\n"
        with pytest.raises(AnalysisParseFailure) as exc:
            analyze_files_parallel(files, jobs=3)
        assert "broken.py" in str(exc.value)
