"""Network path models."""

import pytest

from repro.errors import LinkConfigError, SimulationError, TraceError
from repro.media.tracks import MediaType
from repro.net.link import SeparatePaths, SharedBottleneck, shared
from repro.net.traces import constant, from_pairs

A = MediaType.AUDIO
V = MediaType.VIDEO


class TestSharedBottleneck:
    def test_single_download_gets_full_rate(self):
        link = shared(constant(1000))
        assert link.rates({"v": V}, 0.0) == {"v": 1000}

    def test_two_downloads_split_equally(self):
        # The fair split that halves Shaka's per-stream samples (Fig. 4a).
        link = shared(constant(1000))
        rates = link.rates({"v": V, "a": A}, 0.0)
        assert rates == {"v": 500, "a": 500}

    def test_no_downloads(self):
        assert shared(constant(1000)).rates({}, 0.0) == {}

    def test_rate_follows_trace(self):
        link = shared(from_pairs([(10, 100), (10, 900)]))
        assert link.rates({"v": V}, 5.0)["v"] == 100
        assert link.rates({"v": V}, 15.0)["v"] == 900

    def test_next_change_delegates(self):
        link = shared(from_pairs([(10, 100), (10, 900)]))
        assert link.next_change_after(3) == 10

    def test_negative_rtt_rejected(self):
        # A bad RTT is a simulation-setup mistake, not bad trace data.
        with pytest.raises(SimulationError):
            SharedBottleneck(constant(100), rtt_s=-0.1)

    def test_negative_rtt_error_type(self):
        with pytest.raises(LinkConfigError):
            SharedBottleneck(constant(100), rtt_s=-0.1)

    def test_negative_rtt_legacy_handlers_still_catch(self):
        # Deprecation shim: this historically raised TraceError, and
        # ``except TraceError`` handlers must keep working for now.
        with pytest.raises(TraceError):
            SharedBottleneck(constant(100), rtt_s=-0.1)

    def test_rtt_stored(self):
        assert shared(constant(100), rtt_s=0.05).rtt_s == 0.05


class TestSeparatePaths:
    def test_each_medium_gets_its_own_trace(self):
        paths = SeparatePaths(video_trace=constant(2000), audio_trace=constant(300))
        rates = paths.rates({"v": V, "a": A}, 0.0)
        assert rates == {"v": 2000, "a": 300}

    def test_concurrency_does_not_cross_media(self):
        # Audio downloading never steals video-path bandwidth.
        paths = SeparatePaths(video_trace=constant(2000), audio_trace=constant(300))
        solo = paths.rates({"v": V}, 0.0)["v"]
        both = paths.rates({"v": V, "a": A}, 0.0)["v"]
        assert solo == both == 2000

    def test_same_medium_shares_its_path(self):
        paths = SeparatePaths(video_trace=constant(2000), audio_trace=constant(300))
        rates = paths.rates({"v1": V, "v2": V}, 0.0)
        assert rates == {"v1": 1000, "v2": 1000}

    def test_next_change_is_min_over_paths(self):
        paths = SeparatePaths(
            video_trace=from_pairs([(10, 100), (10, 200)]),
            audio_trace=from_pairs([(4, 50), (4, 80)]),
        )
        assert paths.next_change_after(0) == 4

    def test_negative_rtt_rejected(self):
        with pytest.raises(SimulationError):
            SeparatePaths(constant(1), constant(1), rtt_s=-1)

    def test_negative_rtt_legacy_handlers_still_catch(self):
        with pytest.raises(TraceError):
            SeparatePaths(constant(1), constant(1), rtt_s=-1)
