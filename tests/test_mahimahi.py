"""Mahimahi trace import/export."""

import pytest

from repro.errors import TraceError
from repro.net.mahimahi import (
    BITS_PER_PACKET,
    load_mahimahi,
    save_mahimahi,
    trace_from_timestamps,
)
from repro.net.traces import constant, from_pairs


class TestFromTimestamps:
    def test_constant_rate(self):
        # 100 packets/s = 1.2 Mbps.
        timestamps = [i * 10 for i in range(300)]  # one every 10 ms for 3 s
        trace = trace_from_timestamps(timestamps, window_s=1.0)
        assert trace.bandwidth_at(0.5) == pytest.approx(1200.0)
        assert trace.bandwidth_at(2.5) == pytest.approx(1200.0)

    def test_varying_rate(self):
        # 1 s dense, 1 s sparse.
        timestamps = [i for i in range(0, 1000, 5)] + [1000 + i * 100 for i in range(10)]
        trace = trace_from_timestamps(timestamps, window_s=1.0)
        assert trace.bandwidth_at(0.5) > trace.bandwidth_at(1.5)

    def test_outage_window_is_zero(self):
        timestamps = [0, 10, 20, 2500]  # nothing in [1 s, 2 s)
        trace = trace_from_timestamps(timestamps, window_s=1.0)
        assert trace.bandwidth_at(1.5) == 0.0

    def test_unsorted_input_ok(self):
        a = trace_from_timestamps([30, 10, 20])
        b = trace_from_timestamps([10, 20, 30])
        assert a.to_pairs() == b.to_pairs()

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            trace_from_timestamps([])

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            trace_from_timestamps([-5, 10])

    def test_bad_window_rejected(self):
        with pytest.raises(TraceError):
            trace_from_timestamps([0], window_s=0)


class TestFileRoundTrip:
    def test_load(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("\n".join(str(i * 10) for i in range(200)) + "\n")
        trace = load_mahimahi(str(path))
        assert trace.bandwidth_at(0.5) == pytest.approx(1200.0)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("# header\n\n0\n10\n20\n")
        trace = load_mahimahi(str(path))
        assert trace.period_s == 1.0

    def test_load_bad_line(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text("0\nabc\n")
        with pytest.raises(TraceError):
            load_mahimahi(str(path))

    def test_save_load_roundtrip_preserves_rate(self, tmp_path):
        original = constant(2400.0)  # 200 packets/s
        path = tmp_path / "out"
        save_mahimahi(original, str(path), duration_s=10.0)
        loaded = load_mahimahi(str(path))
        # Packet quantization allows ~1 packet/window error.
        for t in (0.5, 4.5, 8.5):
            assert loaded.bandwidth_at(t) == pytest.approx(2400.0, abs=BITS_PER_PACKET / 1000.0)

    def test_save_load_piecewise(self, tmp_path):
        original = from_pairs([(5, 600.0), (5, 3000.0)])
        path = tmp_path / "out"
        save_mahimahi(original, str(path), duration_s=10.0)
        loaded = load_mahimahi(str(path))
        assert loaded.bandwidth_at(2.0) < loaded.bandwidth_at(7.0)

    def test_drives_a_session(self, tmp_path, content):
        from repro.core.combinations import hsub_combinations
        from repro.core.player import RecommendedPlayer
        from repro.net.link import shared
        from repro.sim.session import simulate

        save_mahimahi(constant(1500.0), str(tmp_path / "t"), duration_s=30.0)
        trace = load_mahimahi(str(tmp_path / "t"))
        player = RecommendedPlayer(hsub_combinations(content))
        result = simulate(content, player, shared(trace))
        assert result.completed
