"""dash.js model (Section 3.4 behaviours)."""

import pytest

from repro.errors import PlayerError
from repro.manifest.packager import package_dash
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.dashjs import DashJsPlayer
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestConstruction:
    def test_independent_media_state(self, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        assert player.estimator_of(V) is not player.estimator_of(A)

    def test_rung_ordering(self, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        assert player.rung_of(V, "V1") == 0
        assert player.rung_of(V, "V6") == 5
        assert player.rung_of(A, "A3") == 2

    def test_invalid_safety_factor(self, dash_manifest):
        with pytest.raises(PlayerError):
            DashJsPlayer(dash_manifest, bandwidth_safety_factor=1.5)


class TestIndependentEstimation:
    def test_estimators_see_only_their_medium(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        # Both estimators have data, and neither ever exceeds the link.
        video_estimate = player.estimator_of(V).get_estimate_kbps()
        audio_estimate = player.estimator_of(A).get_estimate_kbps()
        assert video_estimate is not None and audio_estimate is not None
        assert video_estimate <= 700.0 + 1e-6
        assert audio_estimate <= 700.0 + 1e-6
        # While audio and video download concurrently, each medium's
        # estimate reflects only its half-share of the 700 kbps link:
        # the logged video estimates dip well below the link capacity.
        logged = [e.kbps for e in result.estimate_timeline]
        assert min(logged) < 500.0


class TestFig5Behaviour:
    def test_undesirable_combination_selected(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert "V2+A3" in set(result.combination_names())

    def test_audio_reaches_top_rung_and_buffer_target_rises(
        self, content, dash_manifest
    ):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert result.track_usage(A).get("A3", 0) > content.n_chunks / 2
        # bufferTimeAtTopQuality: the audio buffer climbs far above the
        # 12 s stable target.
        max_audio = max(s.audio_level_s for s in result.buffer_timeline)
        assert max_audio > 20.0

    def test_buffers_unbalanced(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert result.max_buffer_imbalance_s() >= 10.0

    def test_video_fluctuates(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert result.switch_count(V) >= 5

    def test_v3_a2_never_coordinated(self, content, dash_manifest):
        """Independent adaptation cannot land on the preferable V3+A2."""
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert "V3+A2" not in set(result.combination_names())


class TestDynamicRule:
    def test_starts_with_throughput_at_lowest(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        # No estimate yet -> lowest rung for the first chunk.
        assert result.combination_names()[0] == "V1+A1"

    def test_switches_to_bola_with_deep_buffer(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        simulate(content, player, shared(constant(700.0)))
        # By session end the audio stream has a deep buffer; DYNAMIC
        # must have flipped it to BOLA at some point.
        assert player.is_using_bola(A)

    def test_ample_bandwidth_reaches_top_rungs(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(10_000.0)))
        assert "V6" in result.track_usage(V)
        assert "A3" in result.track_usage(A)
        assert result.n_stalls == 0

    def test_starved_link_stays_low(self, content, dash_manifest):
        player = DashJsPlayer(dash_manifest)
        result = simulate(content, player, shared(constant(250.0)))
        usage = result.track_usage(V)
        assert max(usage, key=usage.get) == "V1"
