"""Every paper artifact reproduces, and the report machinery works."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_names, run_experiment
from repro.experiments.base import Check, ExperimentReport

ALL_EXPERIMENTS = experiment_names()


class TestRegistry:
    def test_expected_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) >= {
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig2a",
            "fig2b",
            "fig3",
            "fig3_a1_first",
            "fig4a",
            "fig4b",
            "fig5",
            "fluctuation",
            "best_practices",
            "ablations",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_reproduces(name):
    """The headline integration test: every table and figure of the
    paper regenerates with the documented shape."""
    report = run_experiment(name)
    failed = [str(c) for c in report.checks if not c.passed]
    assert report.passed, f"{name}: {failed}"
    assert report.checks, f"{name} has no checks"


def test_every_registered_experiment_declares_checks():
    """Static audit backing the zero-checks fix: each registered
    runner's module registers at least one shape-level assertion, so no
    experiment can ride the (now-removed) vacuous REPRODUCED path."""
    import inspect

    from repro.experiments.base import _REGISTRY

    for name, runner in _REGISTRY.items():
        source = inspect.getsource(inspect.getmodule(runner))
        assert ".check(" in source, f"{name}'s module registers no checks"


class TestSpecificShapes:
    def test_fig3_stall_shape(self):
        report = run_experiment("fig3")
        stall_line = report.timelines["stalls"]
        assert len(stall_line) >= 2  # paper: 5 stall events

    def test_fig4a_estimate_series_flat_500(self):
        report = run_experiment("fig4a")
        values = {v for _, v in report.series["estimate_kbps"]}
        assert values == {500.0}

    def test_fig4b_estimate_crosses_600(self):
        report = run_experiment("fig4b")
        values = [v for _, v in report.series["estimate_kbps"]]
        assert min(values) <= 500.0
        assert max(values) > 900.0

    def test_table2_has_18_rows(self):
        assert len(run_experiment("table2").rows) == 18

    def test_table3_has_6_rows(self):
        assert len(run_experiment("table3").rows) == 6

    def test_best_practices_rows_cover_three_scenarios(self):
        report = run_experiment("best_practices")
        scenarios = {row[0] for row in report.rows}
        assert scenarios == {"fig3", "fig4a", "fig5"}


class TestReportRendering:
    def test_render_contains_checks_and_verdict(self):
        report = run_experiment("table1")
        text = report.render()
        assert "table1" in text
        assert "[PASS]" in text
        assert "REPRODUCED" in text

    def test_render_table_alignment(self):
        report = ExperimentReport(
            experiment_id="x",
            title="t",
            header=("A", "B"),
            rows=[("aa", 1), ("b", 22)],
        )
        lines = report.render_table().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_render_empty_table(self):
        report = ExperimentReport(experiment_id="x", title="t")
        assert report.render_table() == "(no rows)"

    def test_failed_check_marks_mismatch(self):
        report = ExperimentReport(experiment_id="x", title="t")
        report.check("always false", False, detail="boom")
        assert not report.passed
        assert "MISMATCH" in report.render()
        assert "boom" in report.render()

    def test_check_str(self):
        check = Check(description="d", passed=True, detail="x")
        assert str(check) == "[PASS] d (x)"

    def test_timeline_compaction(self):
        report = ExperimentReport(experiment_id="x", title="t")
        report.timelines["combo"] = [(0.0, "a"), (1.0, "a"), (2.0, "b")]
        text = report.render()
        assert "a@0s -> b@2s" in text

    def test_timeline_includes_final_run_end_time(self):
        """The last track choice must not render as lasting zero
        seconds: the final sample's time is appended when it extends
        past the last transition."""
        report = ExperimentReport(experiment_id="x", title="t")
        report.timelines["combo"] = [
            (0.0, "a"),
            (4.0, "a"),
            (8.0, "b"),
            (12.0, "b"),
        ]
        assert "a@0s -> b@8s (held to 12s)" in report.render()

    def test_zero_checks_is_not_reproduced(self):
        """A report that registers no assertions must not claim
        reproduction vacuously."""
        report = ExperimentReport(experiment_id="x", title="t")
        assert not report.passed
        assert report.status == "NO CHECKS"
        assert "=> NO CHECKS" in report.render()
        report.check("now it has one", True)
        assert report.passed
        assert report.status == "REPRODUCED"

    def test_render_table_header_wider_than_first_row(self):
        """Column widths come from the widest shape present: a header
        with more columns than the first row must not drop columns."""
        report = ExperimentReport(
            experiment_id="x",
            title="t",
            header=("alpha", "beta", "gamma"),
            rows=[("a", 1)],
        )
        lines = report.render_table().splitlines()
        assert "gamma" in lines[0]
        assert len(lines) == 3

    def test_render_table_ragged_rows_padded(self):
        report = ExperimentReport(
            experiment_id="x",
            title="t",
            header=("A",),
            rows=[("a",), ("b", 2, 3)],
        )
        lines = report.render_table().splitlines()
        assert lines[-1].split() == ["b", "2", "3"]
        assert len(lines) == 4
