"""Engine-divergence diffing: localize the first behavioural split."""

from repro.net.link import shared
from repro.net.traces import square_wave
from repro.players.estimators import ShakaEstimator
from repro.players.shaka import ShakaPlayer
from repro.replay import (
    EventRecorder,
    diff_event_logs,
    diff_event_streams,
    scan_events,
)
from repro.replay.diff import DEFAULT_IGNORE_FIELDS
from repro.runner.jobs import PlayerSpec
from repro.sim.session import Session, SessionConfig


class SkewedEstimator(ShakaEstimator):
    """A Shaka estimator reading a fixed fraction high.

    Stands in for a real engine regression: identical inputs, slightly
    different estimate, so the first divergent event in the log is the
    estimate itself — exactly what the differ must localize.
    """

    def __init__(self, skew: float = 1.001, **kwargs):
        super().__init__(**kwargs)
        self.skew = skew

    def get_estimate_kbps(self) -> float:
        return super().get_estimate_kbps() * self.skew


def record(content, path, player):
    network = shared(square_wave(600.0, 2500.0, 15.0), rtt_s=0.05)
    recorder = EventRecorder(str(path))
    return Session(content, player, network, SessionConfig(observer=recorder)).run()


def shaka_player(content, estimator=None):
    base = PlayerSpec("shaka").build(content)
    return ShakaPlayer(base.variants, estimator=estimator)


class TestIdenticalRuns:
    def test_two_identical_runs_diff_clean(self, content, tmp_path):
        record(content, tmp_path / "a.jsonl", shaka_player(content))
        record(content, tmp_path / "b.jsonl", shaka_player(content))
        report = diff_event_logs(
            str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        )
        assert report.identical
        assert report.divergence is None
        assert report.events_compared == len(
            scan_events(str(tmp_path / "a.jsonl")).events
        )
        assert report.damage_a is None and report.damage_b is None


class TestPerturbedEstimator:
    """Acceptance criterion: a perturbed Shaka estimator is localized."""

    def test_first_divergence_is_the_estimate(self, content, tmp_path):
        record(content, tmp_path / "base.jsonl", shaka_player(content))
        record(
            content,
            tmp_path / "skew.jsonl",
            shaka_player(content, estimator=SkewedEstimator(1.001)),
        )
        report = diff_event_logs(
            str(tmp_path / "base.jsonl"), str(tmp_path / "skew.jsonl")
        )
        assert not report.identical
        div = report.divergence
        # The skew only shows once real samples exist, so everything up
        # to the first post-download estimate is provably unchanged...
        assert report.events_compared == div.index
        assert div.index > 0
        # ...and the split lands on the estimate's kbps field itself.
        assert div.a["k"] == "estimate"
        assert div.field == "kbps"
        assert div.a["kbps"] != div.b["kbps"]
        assert "first divergence at event" in div.describe()

    def test_rtol_absorbs_the_skew(self, content, tmp_path):
        record(content, tmp_path / "base.jsonl", shaka_player(content))
        record(
            content,
            tmp_path / "skew.jsonl",
            shaka_player(content, estimator=SkewedEstimator(1.0000001)),
        )
        exact = diff_event_logs(
            str(tmp_path / "base.jsonl"), str(tmp_path / "skew.jsonl")
        )
        assert not exact.identical  # default comparison is exact
        loose = diff_event_logs(
            str(tmp_path / "base.jsonl"), str(tmp_path / "skew.jsonl"), rtol=1e-3
        )
        # An ulp-level skew never moves a decision, so rtol flattens it.
        assert loose.identical


class TestStreamDiff:
    def test_length_mismatch_reports_survivor(self):
        a = [{"k": "estimate", "seq": 0, "kbps": 500.0}]
        report = diff_event_streams(a, [])
        assert report.divergence.index == 0
        assert "log B ends after 0 events" in report.divergence.reason
        assert report.divergence.b is None

    def test_kind_mismatch(self):
        a = [{"k": "estimate", "seq": 0}]
        b = [{"k": "decision", "seq": 0}]
        report = diff_event_streams(a, b)
        assert report.divergence.field == "k"
        assert "estimate" in report.divergence.reason

    def test_ignore_fields_skip_provenance(self):
        a = [{"k": "session_meta", "seq": 0, "label": "run-a"}]
        b = [{"k": "session_meta", "seq": 0, "label": "run-b"}]
        assert diff_event_streams(a, b).identical
        strict = diff_event_streams(a, b, ignore_fields=frozenset())
        assert strict.divergence.field == "label"
        assert "label" in DEFAULT_IGNORE_FIELDS

    def test_nested_field_path(self):
        a = [{"k": "session_meta", "seq": 0, "config": {"rtt_s": 0.05}}]
        b = [{"k": "session_meta", "seq": 0, "config": {"rtt_s": 0.06}}]
        report = diff_event_streams(a, b)
        assert report.divergence.field == "config.rtt_s"

    def test_non_finite_floats_compare_by_value(self):
        a = [{"k": "estimate", "seq": 0, "kbps": "inf"}]
        assert diff_event_streams(a, a).identical
        b = [{"k": "estimate", "seq": 0, "kbps": "nan"}]
        assert diff_event_streams(b, b).identical  # NaN == NaN for diffing
        report = diff_event_streams(a, b)
        assert report.divergence.field == "kbps"

    def test_context_precedes_divergence(self):
        a = [{"k": "estimate", "seq": i, "kbps": 100.0 + i} for i in range(6)]
        b = [dict(e) for e in a]
        b[5]["kbps"] = 999.0
        report = diff_event_streams(a, b, context=3)
        assert [e["seq"] for e in report.context] == [2, 3, 4]


class TestTornLogDiff:
    def test_torn_log_reports_damage_not_agreement(self, content, tmp_path):
        import os

        record(content, tmp_path / "a.jsonl", shaka_player(content))
        record(content, tmp_path / "b.jsonl", shaka_player(content))
        torn = str(tmp_path / "b.jsonl")
        with open(torn, "r+b") as f:
            f.truncate(os.path.getsize(torn) // 2)
        report = diff_event_logs(str(tmp_path / "a.jsonl"), torn)
        assert report.damage_b == "truncated"
        assert not report.identical  # the tear shows up as a length split
        assert "log B ends" in report.divergence.reason
