"""Crash-safe framing: entry frames, line frames, damage taxonomy."""

import os

import pytest

from repro.framing import (
    CORRUPT,
    ENTRY_HEADER_SIZE,
    ENTRY_MAGIC,
    OK,
    TRUNCATED,
    append_line,
    frame_line,
    frame_payload,
    scan_line_file,
    scan_lines,
    unframe_payload,
)


class TestEntryFraming:
    def test_round_trip(self):
        payload = b"hello framing" * 100
        data = frame_payload(payload)
        recovered, kind = unframe_payload(data)
        assert kind == OK
        assert recovered == payload

    def test_empty_payload(self):
        recovered, kind = unframe_payload(frame_payload(b""))
        assert kind == OK
        assert recovered == b""

    def test_truncated_prefix_is_truncated(self):
        data = frame_payload(b"x" * 64)
        for cut in (1, len(ENTRY_MAGIC), ENTRY_HEADER_SIZE, len(data) - 1):
            recovered, kind = unframe_payload(data[:cut])
            assert recovered is None
            assert kind == TRUNCATED, f"cut at {cut}"

    def test_wrong_magic_is_corrupt(self):
        data = b"WRONG" + frame_payload(b"x" * 64)[len(ENTRY_MAGIC) :]
        assert unframe_payload(data) == (None, CORRUPT)

    def test_flipped_payload_bit_is_corrupt(self):
        data = bytearray(frame_payload(b"y" * 64))
        data[-1] ^= 0x01
        assert unframe_payload(bytes(data)) == (None, CORRUPT)

    def test_surplus_bytes_are_corrupt(self):
        data = frame_payload(b"z" * 16) + b"extra"
        assert unframe_payload(data) == (None, CORRUPT)

    def test_magic_unchanged(self):
        # Existing on-disk caches must stay readable.
        assert ENTRY_MAGIC == b"RPRC1"


class TestLineFraming:
    def test_round_trip(self):
        lines = [frame_line(b'{"k":"a"}'), frame_line(b'{"k":"b","x":1}')]
        scan = scan_lines(b"".join(lines))
        assert scan.intact
        assert scan.payloads == [b'{"k":"a"}', b'{"k":"b","x":1}']

    def test_empty_log(self):
        scan = scan_lines(b"")
        assert scan.intact
        assert scan.payloads == []

    def test_newline_in_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_line(b"two\nlines")

    def test_torn_final_line_is_truncated(self):
        data = frame_line(b'{"k":"a"}') + frame_line(b'{"k":"bbbb"}')
        for cut in range(1, len(frame_line(b'{"k":"bbbb"}'))):
            scan = scan_lines(data[: len(frame_line(b'{"k":"a"}')) + cut])
            assert scan.payloads[0] == b'{"k":"a"}'
            assert scan.damage == TRUNCATED, f"cut at {cut}"
            assert scan.damage_line == 2

    def test_torn_line_missing_only_newline_keeps_payload(self):
        data = frame_line(b'{"k":"a"}')[:-1]  # complete frame, no terminator
        scan = scan_lines(data)
        assert scan.payloads == [b'{"k":"a"}']
        assert scan.damage == TRUNCATED

    def test_mid_log_damage_is_corrupt_and_stops_scan(self):
        good = frame_line(b'{"k":"a"}')
        bad = bytearray(frame_line(b'{"k":"b"}'))
        bad[-3] ^= 0x40  # flip a payload bit, line stays terminated
        scan = scan_lines(good + bytes(bad) + frame_line(b'{"k":"c"}'))
        assert scan.damage == CORRUPT
        assert scan.damage_line == 2
        assert scan.payloads == [b'{"k":"a"}']  # nothing after the damage

    def test_garbage_line_is_corrupt(self):
        scan = scan_lines(frame_line(b'{"k":"a"}') + b"not a frame\n")
        assert scan.damage == CORRUPT
        assert scan.damage_line == 2

    def test_short_header_tear_is_truncated(self):
        scan = scan_lines(frame_line(b'{"k":"a"}') + b"REV1 00")
        assert scan.damage == TRUNCATED
        assert scan.payloads == [b'{"k":"a"}']


class TestAppendLine:
    def test_appends_whole_lines(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_line(path, frame_line(b'{"k":"a"}'))
        append_line(path, frame_line(b'{"k":"b"}'))
        scan = scan_line_file(path)
        assert scan.intact
        assert [p for p in scan.payloads] == [b'{"k":"a"}', b'{"k":"b"}']

    def test_best_effort_swallows_os_errors(self, tmp_path):
        missing_dir = str(tmp_path / "no" / "such" / "dir" / "log")
        append_line(missing_dir, frame_line(b"{}"), best_effort=True)
        with pytest.raises(OSError):
            append_line(missing_dir, frame_line(b"{}"))


class TestCacheDelegation:
    def test_cache_reexports_framing(self):
        from repro.runner import cache

        assert cache.ENTRY_MAGIC == ENTRY_MAGIC
        assert cache.HEADER_SIZE == ENTRY_HEADER_SIZE
        assert cache.frame_payload(b"x") == frame_payload(b"x")

    def test_chaos_log_event_still_plain_json(self, tmp_path):
        import json

        from repro.chaos.injector import log_event

        path = str(tmp_path / "chaos.jsonl")
        log_event(path, event="requeue", job="j#1")
        with open(path, "r", encoding="utf-8") as f:
            event = json.loads(f.readline())
        assert event["event"] == "requeue"
        assert event["pid"] == os.getpid()
