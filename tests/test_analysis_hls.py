"""HLS rules of the static analyzer (text-level, with source spans)."""

import pytest

from repro.analysis import (
    AnalysisParseFailure,
    AnalyzerConfig,
    Severity,
    analyze_files,
    analyze_text,
    worst_severity,
)


def rules(findings):
    return {f.rule for f in findings}


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


GOOD_MASTER = """#EXTM3U
#EXT-X-VERSION:6
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="audio",NAME="A1",URI="A1.m3u8"
#EXT-X-STREAM-INF:BANDWIDTH=1500000,AVERAGE-BANDWIDTH=1200000,CODECS="avc1.640028,mp4a.40.2",AUDIO="audio"
V1_A1.m3u8
"""

GOOD_MEDIA = """#EXTM3U
#EXT-X-VERSION:4
#EXT-X-TARGETDURATION:4
#EXT-X-PLAYLIST-TYPE:VOD
#EXTINF:4.00000,
#EXT-X-BYTERANGE:500000@0
V1.mp4
#EXT-X-ENDLIST
"""


class TestSpans:
    def test_findings_carry_file_line_col(self):
        text = GOOD_MASTER.replace("BANDWIDTH=1500000,", "")
        findings = analyze_text("master.m3u8", text)
        f = by_rule(findings, "HLS-BANDWIDTH-PRESENT")[0]
        assert f.file == "master.m3u8"
        assert f.line == 4  # the EXT-X-STREAM-INF line
        assert f.col >= 1

    def test_sorted_by_position(self):
        findings = analyze_files(
            {"b.m3u8": GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", ""),
             "a.m3u8": GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "")}
        )
        keys = [(f.file, f.line, f.col) for f in findings]
        assert keys == sorted(keys)


class TestBasicConformance:
    def test_missing_extm3u(self):
        findings = analyze_text("m.m3u8", GOOD_MEDIA.replace("#EXTM3U\n", ""))
        assert "HLS-EXTM3U" in rules(findings)

    def test_clean_media_playlist(self):
        assert analyze_text("V1.m3u8", GOOD_MEDIA) == []

    def test_version_gate_byterange(self):
        text = GOOD_MEDIA.replace("#EXT-X-VERSION:4", "#EXT-X-VERSION:3")
        findings = analyze_text("V1.m3u8", text)
        gate = by_rule(findings, "HLS-VERSION-GATE")
        assert gate and gate[0].severity is Severity.ERROR
        assert "version >= 4" in gate[0].message

    def test_version_gate_float_extinf_without_version(self):
        text = "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:3.5,\nc.mp4\n#EXT-X-ENDLIST\n"
        findings = analyze_text("m.m3u8", text)
        assert "HLS-VERSION-GATE" in rules(findings)

    def test_integer_extinf_needs_no_version(self):
        text = "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:4,\nc.mp4\n#EXT-X-ENDLIST\n"
        assert "HLS-VERSION-GATE" not in rules(analyze_text("m.m3u8", text))

    def test_targetduration_missing(self):
        text = GOOD_MEDIA.replace("#EXT-X-TARGETDURATION:4\n", "")
        findings = analyze_text("V1.m3u8", text)
        assert "HLS-TARGETDURATION-PRESENT" in rules(findings)

    def test_targetduration_exceeded(self):
        text = GOOD_MEDIA.replace("#EXT-X-TARGETDURATION:4", "#EXT-X-TARGETDURATION:3")
        findings = analyze_text("V1.m3u8", text)
        exceeded = by_rule(findings, "HLS-TARGETDURATION")
        assert exceeded and exceeded[0].severity is Severity.ERROR

    def test_targetduration_rounding_is_rfc_half_up(self):
        # 4.4 rounds to 4: allowed by TARGETDURATION:4
        text = GOOD_MEDIA.replace("#EXTINF:4.00000,", "#EXTINF:4.40000,")
        assert "HLS-TARGETDURATION" not in rules(analyze_text("V1.m3u8", text))

    def test_vod_without_endlist(self):
        text = GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "")
        findings = analyze_text("V1.m3u8", text)
        assert "HLS-ENDLIST" in rules(findings)

    def test_live_playlist_without_endlist_ok(self):
        text = GOOD_MEDIA.replace("#EXT-X-PLAYLIST-TYPE:VOD\n", "").replace(
            "#EXT-X-ENDLIST\n", ""
        )
        assert "HLS-ENDLIST" not in rules(analyze_text("V1.m3u8", text))

    def test_missing_segment_uri(self):
        text = "#EXTM3U\n#EXT-X-VERSION:3\n#EXT-X-TARGETDURATION:4\n#EXTINF:4.0,\n#EXT-X-ENDLIST\n"
        findings = analyze_text("V1.m3u8", text)
        assert "HLS-URI-PRESENT" in rules(findings)

    def test_malformed_attribute_list(self):
        text = GOOD_MASTER.replace('AUDIO="audio"', 'AUDIO="audio')
        findings = analyze_text("master.m3u8", text)
        assert "HLS-ATTR-SYNTAX" in rules(findings)


class TestMasterRules:
    def test_missing_bandwidth(self):
        text = GOOD_MASTER.replace("BANDWIDTH=1500000,", "")
        findings = analyze_text("master.m3u8", text)
        assert "HLS-BANDWIDTH-PRESENT" in rules(findings)

    def test_missing_codecs_warns(self):
        text = GOOD_MASTER.replace(',CODECS="avc1.640028,mp4a.40.2"', "")
        findings = analyze_text("master.m3u8", text)
        codecs = by_rule(findings, "HLS-CODECS-PRESENT")
        assert codecs and codecs[0].severity is Severity.WARNING

    def test_undeclared_audio_group(self):
        text = GOOD_MASTER.replace('GROUP-ID="audio"', 'GROUP-ID="other"')
        findings = analyze_text("master.m3u8", text)
        assert "HLS-GROUP-INTEGRITY" in rules(findings)

    def test_duplicate_rendition_names(self):
        extra = '#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="audio",NAME="A1",URI="A1b.m3u8"\n'
        text = GOOD_MASTER.replace("#EXT-X-STREAM-INF", extra + "#EXT-X-STREAM-INF")
        findings = analyze_text("master.m3u8", text)
        assert "HLS-RENDITION-NAMES" in rules(findings)

    def test_audio_coverage_error(self):
        text = GOOD_MASTER.replace('AUDIO="audio"', "")
        text = text.replace("V1_A1.m3u8", "V1_A9.m3u8")
        findings = analyze_text("master.m3u8", text)
        coverage = by_rule(findings, "HLS-AUDIO-COVERAGE")
        assert coverage and worst_severity(findings) is Severity.ERROR

    def test_variant_order_flagged(self):
        text = """#EXTM3U
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="audio",NAME="A1",URI="A1.m3u8"
#EXT-X-STREAM-INF:BANDWIDTH=900000,AVERAGE-BANDWIDTH=800000,CODECS="a,v",AUDIO="audio"
V1_A2.m3u8
#EXT-X-STREAM-INF:BANDWIDTH=300000,AVERAGE-BANDWIDTH=250000,CODECS="a,v",AUDIO="audio"
V1_A1.m3u8
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="audio",NAME="A2",URI="A2.m3u8"
"""
        findings = analyze_text("master.m3u8", text)
        assert "HLS-VARIANT-ORDER" in rules(findings)


class TestPackageRules:
    def test_missing_media_playlist(self):
        files = {"master.m3u8": GOOD_MASTER, "A1.m3u8": GOOD_MEDIA}
        findings = analyze_files(files)
        missing = by_rule(findings, "HLS-MEDIA-PLAYLIST-MISSING")
        assert missing and "V1" in missing[0].message

    def test_lone_master_not_flagged_for_missing_media(self):
        findings = analyze_files({"master.m3u8": GOOD_MASTER})
        assert "HLS-MEDIA-PLAYLIST-MISSING" not in rules(findings)

    def test_declared_bandwidth_inconsistent(self):
        master = GOOD_MASTER.replace("BANDWIDTH=1500000", "BANDWIDTH=9000000")
        files = {
            "master.m3u8": master,
            "V1.m3u8": GOOD_MEDIA,
            "A1.m3u8": GOOD_MEDIA.replace("500000@0", "50000@0"),
        }
        findings = analyze_files(files)
        assert "HLS-BANDWIDTH-CONSISTENT" in rules(findings)

    def test_consistent_bandwidth_clean(self):
        # V1: 700000 B / 4 s = 1.4 Mbps; A1: 50000 B / 4 s = 0.1 Mbps;
        # aggregate peak 1.5 Mbps == declared BANDWIDTH.
        files = {
            "master.m3u8": GOOD_MASTER,
            "V1.m3u8": GOOD_MEDIA.replace("500000@0", "700000@0"),
            "A1.m3u8": GOOD_MEDIA.replace("500000@0", "50000@0"),
        }
        findings = analyze_files(files)
        assert "HLS-BANDWIDTH-CONSISTENT" not in rules(findings)


class TestConfig:
    def test_disable_rule(self):
        text = GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "")
        config = AnalyzerConfig(disabled=frozenset({"HLS-ENDLIST"}))
        assert "HLS-ENDLIST" not in rules(analyze_text("V1.m3u8", text, config))

    def test_select_rules(self):
        text = GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "").replace(
            "#EXT-X-TARGETDURATION:4\n", ""
        )
        config = AnalyzerConfig(selected=frozenset({"HLS-ENDLIST"}))
        assert rules(analyze_text("V1.m3u8", text, config)) == {"HLS-ENDLIST"}

    def test_empty_playlist_is_parse_failure(self):
        with pytest.raises(AnalysisParseFailure):
            analyze_text("V1.m3u8", "   \n")


class TestBaseline:
    def test_baseline_suppresses_and_survives_line_shift(self):
        from repro.analysis import Baseline

        text = GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "")
        first = analyze_text("V1.m3u8", text)
        baseline = Baseline.from_findings(first)
        config = AnalyzerConfig(baseline=baseline)
        assert analyze_text("V1.m3u8", text, config) == []
        # Insert a comment line above everything: line numbers shift but
        # fingerprints (rule|file|line text) do not.
        shifted = "#EXTM3U\n# a comment\n" + text[len("#EXTM3U\n") :]
        assert analyze_text("V1.m3u8", shifted, config) == []

    def test_baseline_roundtrip(self):
        from repro.analysis import Baseline

        findings = analyze_text(
            "V1.m3u8", GOOD_MEDIA.replace("#EXT-X-ENDLIST\n", "")
        )
        baseline = Baseline.from_findings(findings)
        again = Baseline.loads(baseline.dumps())
        assert again.fingerprints == baseline.fingerprints
