"""Property-based manifest round-trips over random ladders.

For any synthesizable ladder, packaging then serializing then parsing
must preserve every fact a player consumes: bandwidths, track
identities, combination structure, byte ranges, languages.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.manifest.dash import parse_mpd, write_mpd
from repro.manifest.hls import (
    parse_master_playlist,
    parse_media_playlist,
    write_master_playlist,
    write_media_playlist,
)
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import synthetic_content


@st.composite
def ladder_content(draw):
    n_video = draw(st.integers(min_value=1, max_value=5))
    n_audio = draw(st.integers(min_value=1, max_value=3))
    video = draw(
        st.lists(
            st.integers(min_value=80, max_value=6000),
            min_size=n_video,
            max_size=n_video,
            unique=True,
        )
    )
    audio = draw(
        st.lists(
            st.integers(min_value=24, max_value=800),
            min_size=n_audio,
            max_size=n_audio,
            unique=True,
        )
    )
    n_chunks = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return synthetic_content("fuzz", video, audio, n_chunks=n_chunks, seed=seed)


class TestDashRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(content=ladder_content())
    def test_mpd_roundtrip_preserves_semantics(self, content):
        manifest = package_dash(content)
        parsed = parse_mpd(write_mpd(manifest))
        assert parsed.duration_s == pytest.approx(manifest.duration_s)
        for original_set, parsed_set in zip(
            manifest.adaptation_sets, parsed.adaptation_sets
        ):
            assert parsed_set.content_type == original_set.content_type
            assert parsed_set.representations == original_set.representations
            assert parsed_set.segment_template == original_set.segment_template

    @settings(max_examples=20, deadline=None)
    @given(content=ladder_content())
    def test_declared_bandwidths_match_tracks(self, content):
        parsed = parse_mpd(write_mpd(package_dash(content)))
        for rep in parsed.video.representations:
            track = content.video.by_id(rep.rep_id)
            assert rep.bandwidth_kbps == pytest.approx(track.declared_kbps, abs=0.001)


class TestHlsRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(content=ladder_content())
    def test_master_roundtrip_preserves_variants(self, content):
        package = package_hls(content)
        parsed = parse_master_playlist(write_master_playlist(package.master))
        assert len(parsed.variants) == len(content.video) * len(content.audio)
        for original, reparsed in zip(package.master.variants, parsed.variants):
            assert reparsed.bandwidth_bps == original.bandwidth_bps
            assert reparsed.average_bandwidth_bps == original.average_bandwidth_bps
            assert reparsed.video_id == original.video_id
            assert reparsed.audio_id == original.audio_id

    @settings(max_examples=20, deadline=None)
    @given(content=ladder_content())
    def test_variant_bandwidth_is_peak_sum(self, content):
        package = package_hls(content)
        for variant in package.master.variants:
            video = content.video.by_id(variant.video_id)
            audio = content.audio.by_id(variant.audio_id)
            assert variant.bandwidth_bps == int(
                round((video.peak_kbps + audio.peak_kbps) * 1000)
            )

    @settings(max_examples=20, deadline=None)
    @given(content=ladder_content())
    def test_media_playlists_reconstruct_chunk_bitrates(self, content):
        package = package_hls(content)  # byte-range packaging
        for track_id in content.chunk_table.track_ids:
            playlist = package.media_playlist(track_id)
            reparsed = parse_media_playlist(
                write_media_playlist(playlist), track_id=track_id
            )
            derived = reparsed.derived_bitrates_kbps()
            assert derived is not None
            for index, kbps in enumerate(derived):
                true_kbps = content.chunk(track_id, index).bitrate_kbps
                # Byte ranges are integer-rounded: ~1 byte/chunk error.
                assert kbps == pytest.approx(true_kbps, rel=0.01)

    @settings(max_examples=20, deadline=None)
    @given(content=ladder_content())
    def test_derived_track_stats_match_ladder(self, content):
        package = package_hls(content)
        derived = package.derived_track_bitrates()
        for track in list(content.video) + list(content.audio):
            avg, peak = derived[track.track_id]
            assert avg == pytest.approx(track.avg_kbps, rel=0.02)
            assert peak == pytest.approx(track.peak_kbps, rel=0.02)
