"""Content policies and device profiles (Section 2.1's server-side knowledge)."""

import pytest

from repro.core.policy import (
    ACTION_MOVIE,
    DRAMA,
    HOME_THEATER,
    MOBILE_HANDSET,
    MUSIC_SHOW,
    ContentPolicy,
    DeviceProfile,
    policy_for,
)
from repro.errors import MediaError


class TestDeviceProfile:
    def test_home_theater_unrestricted(self, content):
        assert len(HOME_THEATER.usable_video(content.video)) == 6
        assert len(HOME_THEATER.usable_audio(content.audio)) == 3

    def test_mobile_caps_resolution(self, content):
        usable = MOBILE_HANDSET.usable_video(content.video)
        assert [t.track_id for t in usable] == ["V1", "V2", "V3", "V4"]

    def test_mobile_caps_channels(self, content):
        usable = MOBILE_HANDSET.usable_audio(content.audio)
        # A2/A3 are 6-channel; a stereo handset keeps only A1.
        assert [t.track_id for t in usable] == ["A1"]

    def test_overconstrained_falls_back_to_lowest(self, content):
        tiny = DeviceProfile(name="tiny", max_video_height=100)
        usable = tiny.usable_video(content.video)
        assert [t.track_id for t in usable] == ["V1"]


class TestContentPolicies:
    def test_drama_matches_hsub(self, content, hsub_combos):
        combos = DRAMA.curate(content)
        assert combos.names == hsub_combos.names

    def test_music_show_prefers_audio(self, content):
        music = MUSIC_SHOW.curate(content)
        drama = DRAMA.curate(content)
        audio_rank = {tid: i for i, tid in enumerate(content.audio.track_ids)}
        for music_combo, drama_combo in zip(music, drama):
            if music_combo.video.track_id == drama_combo.video.track_id:
                assert (
                    audio_rank[music_combo.audio.track_id]
                    >= audio_rank[drama_combo.audio.track_id]
                )

    def test_music_show_pairs_low_video_with_mid_audio(self, content):
        combos = MUSIC_SHOW.curate(content)
        lowest = min(combos, key=lambda c: c.video.declared_kbps)
        assert lowest.audio.track_id != "A1"

    def test_action_movie_prefers_video(self, content):
        action = ACTION_MOVIE.curate(content)
        # Highest video rung still gets top audio only if the bias allows;
        # with -0.5 bias the mid rungs drop audio quality.
        drama = DRAMA.curate(content)
        audio_rank = {tid: i for i, tid in enumerate(content.audio.track_ids)}
        assert sum(
            audio_rank[c.audio.track_id] for c in action
        ) < sum(audio_rank[c.audio.track_id] for c in drama)

    def test_mobile_curation_restricted(self, content):
        combos = DRAMA.curate(content, device=MOBILE_HANDSET)
        for combo in combos:
            assert combo.video.height <= 480
            assert combo.audio.channels <= 2

    def test_policy_lookup(self):
        assert policy_for("music-show") is MUSIC_SHOW
        assert policy_for("drama") is DRAMA
        assert policy_for("action-movie") is ACTION_MOVIE

    def test_unknown_policy(self):
        with pytest.raises(MediaError):
            policy_for("documentary")

    def test_custom_policy(self, content):
        custom = ContentPolicy(name="podcast", audio_bias=1.0)
        combos = custom.curate(content)
        # Full audio bias: everything pairs with the top audio track.
        assert {c.audio.track_id for c in combos} == {"A3"}
