"""MPC joint A/V adaptation."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.mpc import MpcConfig, MpcPlayer
from repro.errors import PlayerError
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant, from_pairs
from repro.qoe.metrics import compute_qoe
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestConfig:
    def test_defaults(self):
        config = MpcConfig()
        assert config.horizon == 3

    def test_horizon_validated(self):
        with pytest.raises(PlayerError):
            MpcConfig(horizon=0)

    def test_safety_validated(self):
        with pytest.raises(PlayerError):
            MpcConfig(safety_factor=1.5)

    def test_max_step_validated(self):
        with pytest.raises(PlayerError):
            MpcConfig(max_step=0)


class TestPlanning:
    def test_plan_prefers_high_rung_with_deep_buffer_and_bandwidth(
        self, content, hsub_combos
    ):
        player = MpcPlayer(hsub_combos)
        first = player._plan(
            start_rung=3, buffer_s=25.0, estimate_kbps=5000.0, chunk_s=5.0
        )
        assert first >= 3

    def test_plan_avoids_rebuffering_rungs(self, content, hsub_combos):
        player = MpcPlayer(hsub_combos)
        first = player._plan(
            start_rung=5, buffer_s=2.0, estimate_kbps=400.0, chunk_s=5.0
        )
        # Top rung (3112 kbps avg) at 400 kbps would stall badly.
        assert first < 5

    def test_plan_stays_put_when_nothing_better(self, content, hsub_combos):
        player = MpcPlayer(hsub_combos)
        first = player._plan(
            start_rung=2, buffer_s=15.0, estimate_kbps=700.0, chunk_s=5.0
        )
        assert first in (1, 2, 3)


class TestEndToEnd:
    def test_completes_and_conforms(self, content, hsub_combos):
        player = MpcPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(900.0)))
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_no_stalls_on_fixed_links(self, content, hsub_combos):
        for kbps in (400.0, 900.0, 2500.0):
            result = simulate(
                content, MpcPlayer(hsub_combos), shared(constant(kbps))
            )
            assert result.n_stalls == 0, kbps

    def test_balanced_buffers(self, content, hsub_combos):
        result = simulate(
            content, MpcPlayer(hsub_combos), shared(constant(900.0))
        )
        assert result.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6

    def test_adapts_audio_jointly(self, content, hsub_combos):
        low = simulate(content, MpcPlayer(hsub_combos), shared(constant(400.0)))
        high = simulate(content, MpcPlayer(hsub_combos), shared(constant(4000.0)))
        assert high.time_weighted_bitrate_kbps(A) > low.time_weighted_bitrate_kbps(A)

    def test_switch_penalty_dampens_oscillation(self, content, hsub_combos):
        trace = from_pairs([(10, 800), (10, 1000)])
        result = simulate(content, MpcPlayer(hsub_combos), shared(trace))
        assert result.switch_count(V) + result.switch_count(A) <= 8

    def test_competitive_qoe_vs_recommended(self, content, hsub_combos):
        from repro.core.player import RecommendedPlayer

        trace = from_pairs([(20, 1200), (20, 500), (20, 900)])
        mpc_result = simulate(content, MpcPlayer(hsub_combos), shared(trace))
        rec_result = simulate(
            content, RecommendedPlayer(hsub_combos), shared(trace)
        )
        mpc_qoe = compute_qoe(mpc_result, content).score
        rec_qoe = compute_qoe(rec_result, content).score
        # MPC should be in the same league (>= 80% of the heuristic).
        assert mpc_qoe >= rec_qoe * 0.8
