"""HLS master/media playlist model, writer and parser."""

import pytest

from repro.errors import ManifestError, ManifestParseError
from repro.manifest.hls import (
    HlsMasterPlaylist,
    HlsMediaPlaylist,
    HlsRendition,
    HlsSegment,
    HlsVariant,
    _parse_attributes,
    parse_master_playlist,
    parse_media_playlist,
    write_master_playlist,
    write_media_playlist,
)


class TestAttributeParser:
    def test_simple(self):
        assert _parse_attributes("BANDWIDTH=253000") == {"BANDWIDTH": "253000"}

    def test_quoted_value_with_comma(self):
        attrs = _parse_attributes('CODECS="avc1.640028,mp4a.40.2",BANDWIDTH=100')
        assert attrs["CODECS"] == "avc1.640028,mp4a.40.2"
        assert attrs["BANDWIDTH"] == "100"

    def test_multiple(self):
        attrs = _parse_attributes('TYPE=AUDIO,GROUP-ID="audio",NAME="A1"')
        assert attrs == {"TYPE": "AUDIO", "GROUP-ID": "audio", "NAME": "A1"}

    def test_unterminated_quote(self):
        with pytest.raises(ManifestParseError):
            _parse_attributes('NAME="oops')

    def test_key_without_value(self):
        with pytest.raises(ManifestParseError):
            _parse_attributes("KEYONLY,X=1")


class TestModelValidation:
    def test_variant_positive_bandwidth(self):
        with pytest.raises(ManifestError):
            HlsVariant(bandwidth_bps=0, uri="v.m3u8")

    def test_variant_needs_uri(self):
        with pytest.raises(ManifestError):
            HlsVariant(bandwidth_bps=1000, uri="")

    def test_rendition_fields(self):
        with pytest.raises(ManifestError):
            HlsRendition(group_id="", name="A1", uri="a.m3u8")

    def test_master_needs_variants(self):
        with pytest.raises(ManifestError):
            HlsMasterPlaylist(variants=())

    def test_segment_positive_duration(self):
        with pytest.raises(ManifestError):
            HlsSegment(duration_s=0, uri="x.mp4")

    def test_media_playlist_needs_segments(self):
        with pytest.raises(ManifestError):
            HlsMediaPlaylist(track_id="V1", segments=())


class TestMasterPlaylist:
    def test_bandwidth_semantics(self, hls_all, hall_combos):
        # BANDWIDTH must be the aggregate *peak* of the combination.
        by_name = {v.name: v for v in hls_all.master.variants}
        for combo in hall_combos:
            variant = by_name[combo.name]
            assert variant.bandwidth_bps == int(round(combo.peak_kbps * 1000))
            assert variant.average_bandwidth_bps == int(round(combo.avg_kbps * 1000))

    def test_hall_lists_18_variants(self, hls_all):
        assert len(hls_all.master.variants) == 18

    def test_hsub_lists_6_variants(self, hls_sub):
        assert len(hls_sub.master.variants) == 6

    def test_audio_renditions_in_ladder_order_by_default(self, hls_all):
        assert [r.name for r in hls_all.master.renditions] == ["A1", "A2", "A3"]

    def test_first_variant_bandwidth_overestimates(self, hls_sub, content):
        # ExoPlayer's HLS video pricing: V3's first variant is V3+A2.
        assert hls_sub.master.first_variant_bandwidth("V3") == 840_000
        assert 840 > content.video.by_id("V3").peak_kbps

    def test_first_variant_bandwidth_missing_video(self, hls_sub):
        with pytest.raises(ManifestError):
            hls_sub.master.first_variant_bandwidth("V9")

    def test_combination_names(self, hls_sub):
        assert set(hls_sub.master.combination_names) == {
            "V1+A1",
            "V2+A1",
            "V3+A2",
            "V4+A2",
            "V5+A3",
            "V6+A3",
        }

    def test_audio_group_ids(self, hls_all):
        assert hls_all.master.audio_group_ids == ("audio",)
        assert len(hls_all.master.audio_renditions("audio")) == 3


class TestMasterRoundTrip:
    def test_roundtrip(self, hls_all):
        text = write_master_playlist(hls_all.master)
        parsed = parse_master_playlist(text)
        assert len(parsed.variants) == len(hls_all.master.variants)
        for original, reparsed in zip(hls_all.master.variants, parsed.variants):
            assert reparsed.bandwidth_bps == original.bandwidth_bps
            assert reparsed.average_bandwidth_bps == original.average_bandwidth_bps
            assert reparsed.video_id == original.video_id
            assert reparsed.audio_id == original.audio_id
            assert reparsed.audio_group == original.audio_group
        assert [r.name for r in parsed.renditions] == [
            r.name for r in hls_all.master.renditions
        ]

    def test_written_text_structure(self, hls_sub):
        text = write_master_playlist(hls_sub.master)
        assert text.startswith("#EXTM3U")
        assert text.count("#EXT-X-STREAM-INF:") == 6
        assert text.count("#EXT-X-MEDIA:") == 3
        assert 'TYPE=AUDIO,GROUP-ID="audio"' in text

    def test_first_rendition_is_default(self, hls_sub):
        text = write_master_playlist(hls_sub.master)
        first_media_line = next(
            line for line in text.splitlines() if line.startswith("#EXT-X-MEDIA")
        )
        assert "DEFAULT=YES" in first_media_line


class TestMasterParserErrors:
    def test_missing_header(self):
        with pytest.raises(ManifestParseError):
            parse_master_playlist("#EXT-X-VERSION:6\n")

    def test_uri_without_stream_inf(self):
        with pytest.raises(ManifestParseError):
            parse_master_playlist("#EXTM3U\nvariant.m3u8\n")

    def test_stream_inf_without_uri(self):
        with pytest.raises(ManifestParseError):
            parse_master_playlist("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=100\n")

    def test_stream_inf_without_bandwidth(self):
        with pytest.raises(ManifestParseError):
            parse_master_playlist(
                "#EXTM3U\n#EXT-X-STREAM-INF:CODECS=\"x\"\nv.m3u8\n"
            )

    def test_bad_resolution(self):
        with pytest.raises(ManifestParseError):
            parse_master_playlist(
                "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1,RESOLUTION=wide\nv.m3u8\n"
            )


class TestMediaPlaylist:
    def test_byterange_roundtrip(self, hls_all):
        playlist = hls_all.media_playlist("V1")
        text = write_media_playlist(playlist)
        parsed = parse_media_playlist(text, track_id="V1")
        assert parsed.track_id == "V1"
        assert len(parsed.segments) == len(playlist.segments)
        for original, reparsed in zip(playlist.segments, parsed.segments):
            assert reparsed.byterange == original.byterange
            assert reparsed.duration_s == pytest.approx(original.duration_s)

    def test_target_duration_is_ceiling(self, hls_all):
        playlist = hls_all.media_playlist("V1")
        assert playlist.target_duration_s == 5

    def test_total_duration(self, hls_all, content):
        playlist = hls_all.media_playlist("A1")
        assert playlist.total_duration_s == pytest.approx(content.duration_s)

    def test_endlist_written(self, hls_all):
        text = write_media_playlist(hls_all.media_playlist("A1"))
        assert text.rstrip().endswith("#EXT-X-ENDLIST")

    def test_implicit_byterange_offset(self):
        text = (
            "#EXTM3U\n#EXT-X-TARGETDURATION:5\n"
            "#EXTINF:5.0,\n#EXT-X-BYTERANGE:100@0\nf.mp4\n"
            "#EXTINF:5.0,\n#EXT-X-BYTERANGE:50\nf.mp4\n"
            "#EXT-X-ENDLIST\n"
        )
        parsed = parse_media_playlist(text, track_id="T")
        assert parsed.segments[1].byterange == (50, 100)

    def test_uri_without_extinf_rejected(self):
        with pytest.raises(ManifestParseError):
            parse_media_playlist("#EXTM3U\nchunk.mp4\n")

    def test_empty_playlist_rejected(self):
        with pytest.raises(ManifestParseError):
            parse_media_playlist("#EXTM3U\n#EXT-X-ENDLIST\n")


class TestBitrateDerivation:
    def test_from_byteranges(self, hls_all, content):
        # Section 4.1 case (i): byte ranges give per-chunk bitrates.
        playlist = hls_all.media_playlist("V3")
        rates = playlist.derived_bitrates_kbps()
        assert rates is not None
        track = content.video.by_id("V3")
        assert playlist.derived_avg_kbps() == pytest.approx(track.avg_kbps, rel=0.01)
        assert playlist.derived_peak_kbps() == pytest.approx(track.peak_kbps, rel=0.01)

    def test_from_bitrate_tags(self, content):
        # Section 4.1 case (ii): EXT-X-BITRATE in chunk-per-file mode.
        from repro.manifest.packager import package_hls

        package = package_hls(content, single_file=False, include_bitrate_tag=True)
        playlist = package.media_playlist("A3")
        rates = playlist.derived_bitrates_kbps()
        assert rates is not None
        assert playlist.derived_avg_kbps() == pytest.approx(384, rel=0.01)

    def test_unavailable_without_either(self, content):
        # The gap the paper's recommendation closes: chunk-per-file with
        # no EXT-X-BITRATE leaves the client blind.
        from repro.manifest.packager import package_hls

        package = package_hls(content, single_file=False, include_bitrate_tag=False)
        playlist = package.media_playlist("A3")
        assert playlist.derived_bitrates_kbps() is None
        assert playlist.derived_avg_kbps() is None
        assert playlist.derived_peak_kbps() is None

    def test_bitrate_tag_roundtrip(self, content):
        from repro.manifest.packager import package_hls

        package = package_hls(content, single_file=False, include_bitrate_tag=True)
        playlist = package.media_playlist("V2")
        parsed = parse_media_playlist(write_media_playlist(playlist), track_id="V2")
        assert parsed.derived_bitrates_kbps() is not None
