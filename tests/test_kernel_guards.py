"""Kernel progress guards and buffer-sample dedup.

The event loop tolerates bursts of coincident (zero-length) events —
trace boundaries landing exactly on wake-ups, completions at segment
edges — but a run of zero-dt events with *bit-identical* kernel state
means the schedule is wedged (classically: a network model whose
``next_change_after`` is not strictly in the future) and must raise
``SimulationError`` with diagnostics instead of spinning to the event
cap. These tests pin both sides of that threshold, plus the coincident
buffer-sample dedup and its diff-side canonicalization bridge.
"""

import math

import pytest

from repro.errors import SimulationError
from repro.experiments.corpus import drama_show
from repro.media.tracks import MediaType
from repro.net.link import NetworkModel, SeparatePaths, shared
from repro.net.traces import square_wave
from repro.players.fixed import FixedTracksPlayer
from repro.replay import (
    EventRecorder,
    canonicalize_events,
    diff_event_logs,
    scan_events,
)
from repro.sim.session import Session, SessionConfig, simulate

CONTENT = drama_show()


def _fixed_player():
    return FixedTracksPlayer(video_id="V1", audio_id="A1", buffer_target_s=30.0)


class _CoincidentBurstNetwork(NetworkModel):
    """A constant link whose ``next_change_after`` stutters.

    For the first ``burst`` queries at each distinct time it reports a
    "change" at that very instant — a zero-length event with no state
    change, exactly the malformed schedule the progress guard watches
    for — then behaves like a constant link again. A burst below the
    guard threshold must be absorbed; at or above it must raise.
    """

    def __init__(self, kbps: float, burst: int):
        self.kbps = kbps
        self.burst = burst
        self.rtt_s = 0.0
        self._calls = {}

    def rates(self, active, t):
        if not active:
            return {}
        share = self.kbps / len(active)
        return {key: share for key in active}

    def next_change_after(self, t: float) -> float:
        n = self._calls.get(t, 0) + 1
        self._calls[t] = n
        return t if n <= self.burst else math.inf


class TestStuckClockGuard:
    def test_coincident_burst_below_threshold_completes(self):
        network = _CoincidentBurstNetwork(
            4000.0, burst=Session.MAX_STUCK_EVENTS // 2
        )
        result = simulate(CONTENT, _fixed_player(), network)
        assert result.completed

    def test_wedged_schedule_raises_with_diagnostics(self):
        network = _CoincidentBurstNetwork(4000.0, burst=10_000_000)
        with pytest.raises(SimulationError) as err:
            simulate(CONTENT, _fixed_player(), network)
        message = str(err.value)
        assert "stuck" in message
        assert "t=" in message
        assert "video" in message and "audio" in message

    def test_wedged_schedule_raises_long_before_event_cap(self):
        network = _CoincidentBurstNetwork(4000.0, burst=10_000_000)
        config = SessionConfig(max_events=500_000)
        with pytest.raises(SimulationError) as err:
            Session(CONTENT, _fixed_player(), network, config).run()
        assert "stuck" in str(err.value)  # the guard, not the event cap

    def test_coincident_trace_boundaries_complete(self):
        # Both paths share one trace object: every segment boundary is
        # a coincident event on both lanes (plus the shared cursor).
        trace = square_wave(1200.0, 2600.0, half_period_s=4.0)
        network = SeparatePaths(trace, trace, rtt_s=0.05)
        result = simulate(
            CONTENT,
            FixedTracksPlayer(
                video_id="V1", audio_id="A1",
                buffer_target_s=30.0, balanced=False,
            ),
            network,
        )
        assert result.completed


class TestBufferSampleDedup:
    def _record(self, tmp_path, network):
        path = str(tmp_path / "session.events.jsonl")
        config = SessionConfig(observer=EventRecorder(path))
        result = Session(CONTENT, _fixed_player(), network, config).run()
        assert result.completed
        return path

    def test_no_identical_consecutive_samples_in_recordings(self, tmp_path):
        # The coincident burst would historically have re-sampled the
        # identical instant once per zero-dt event.
        network = _CoincidentBurstNetwork(4000.0, burst=8)
        path = self._record(tmp_path, network)
        samples = [
            (e["t"], e["video_s"], e["audio_s"])
            for e in scan_events(path).events
            if e["k"] == "buffer_sample"
        ]
        assert samples, "session recorded no buffer samples"
        for prev, cur in zip(samples, samples[1:]):
            assert cur != prev, f"duplicate buffer sample {cur}"

    def test_timeline_matches_recorded_samples(self, tmp_path):
        network = shared(square_wave(1200.0, 2600.0, half_period_s=4.0))
        path = self._record(tmp_path, network)
        result = simulate(CONTENT, _fixed_player(), network)
        recorded = [
            (e["t"], e["video_s"], e["audio_s"])
            for e in scan_events(path).events
            if e["k"] == "buffer_sample"
        ]
        live = [
            (s.t, s.video_level_s, s.audio_level_s)
            for s in result.buffer_timeline
        ]
        assert recorded == live


class TestCanonicalDiff:
    def _events_with_duplicate(self):
        return [
            {"k": "session_meta", "seq": 0, "label": "x"},
            {"k": "buffer_sample", "seq": 1, "t": 0.0, "video_s": 0.0, "audio_s": 0.0},
            {"k": "decision", "seq": 2, "t": 0.0, "medium": "video", "action": "wait", "until": "inf"},
            # The pre-dedup kernel re-sampled the identical instant:
            {"k": "buffer_sample", "seq": 3, "t": 0.0, "video_s": 0.0, "audio_s": 0.0},
            {"k": "verdict", "seq": 4, "t": 1.0, "completed": True},
        ]

    def test_canonicalize_drops_duplicate_and_seq(self):
        canon = canonicalize_events(self._events_with_duplicate())
        kinds = [e["k"] for e in canon]
        assert kinds == ["session_meta", "buffer_sample", "decision", "verdict"]
        assert all("seq" not in e for e in canon)

    def test_canonicalize_keeps_changed_samples(self):
        events = self._events_with_duplicate()
        events[3] = {
            "k": "buffer_sample", "seq": 3,
            "t": 0.0, "video_s": 4.0, "audio_s": 0.0,
        }
        canon = canonicalize_events(events)
        assert [e["k"] for e in canon].count("buffer_sample") == 2

    def test_byte_identical_logs_have_equal_canonical_forms(self, tmp_path):
        network = shared(square_wave(1200.0, 2600.0, half_period_s=4.0))
        paths = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.events.jsonl")
            config = SessionConfig(observer=EventRecorder(path))
            Session(CONTENT, _fixed_player(), network, config).run()
            paths.append(path)
        exact = diff_event_logs(paths[0], paths[1])
        canonical = diff_event_logs(paths[0], paths[1], canonical=True)
        assert exact.identical and canonical.identical

    def test_pre_dedup_log_diffs_clean_only_in_canonical_mode(self, tmp_path):
        network = shared(square_wave(1200.0, 2600.0, half_period_s=4.0))
        path = str(tmp_path / "new.events.jsonl")
        config = SessionConfig(observer=EventRecorder(path))
        Session(CONTENT, _fixed_player(), network, config).run()
        # Forge a pre-dedup recording: duplicate one buffer sample and
        # renumber, as the old kernel would have written it.
        events = scan_events(path).events
        old_style = []
        duplicated = False
        for event in events:
            old_style.append(dict(event))
            if not duplicated and event["k"] == "buffer_sample":
                old_style.append(dict(event))
                duplicated = True
        assert duplicated
        for seq, event in enumerate(old_style):
            event["seq"] = seq
        legacy = str(tmp_path / "legacy.events.jsonl")
        recorder = EventRecorder(legacy)
        for event in old_style:
            payload = {
                k: v for k, v in event.items() if k not in ("k", "seq")
            }
            recorder.emit(event["k"], payload)
        recorder.close()
        exact = diff_event_logs(path, legacy)
        assert not exact.identical
        canonical = diff_event_logs(path, legacy, canonical=True)
        assert canonical.identical, canonical.divergence
