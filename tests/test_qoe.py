"""QoE metrics."""

import math

import pytest

from repro.errors import ReproError
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.fixed import FixedTracksPlayer
from repro.qoe.metrics import (
    QoEWeights,
    combination_utility,
    compute_qoe,
    is_undesirable,
    track_utility,
)
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestWeights:
    def test_defaults_valid(self):
        weights = QoEWeights()
        assert weights.video_quality == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            QoEWeights(rebuffer_per_s=-1)


class TestTrackUtility:
    def test_lowest_rung_is_zero(self, content):
        assert track_utility(content, V, "V1") == 0.0
        assert track_utility(content, A, "A1") == 0.0

    def test_log_scaling(self, content):
        assert track_utility(content, V, "V6") == pytest.approx(
            math.log(2728 / 111)
        )

    def test_monotone_in_ladder(self, content):
        utilities = [track_utility(content, V, t.track_id) for t in content.video]
        assert utilities == sorted(utilities)

    def test_combination_utility_weighted_sum(self, content):
        weights = QoEWeights(video_quality=1.0, audio_quality=0.5)
        expected = track_utility(content, V, "V3") + 0.5 * track_utility(
            content, A, "A2"
        )
        assert combination_utility(content, "V3", "A2", weights) == pytest.approx(
            expected
        )


class TestUndesirable:
    def test_extreme_mismatches_flagged(self, content):
        assert is_undesirable(content, "V1", "A3")  # lowest video, highest audio
        assert is_undesirable(content, "V6", "A1")  # highest video, lowest audio

    def test_proportional_pairs_ok(self, content):
        for video_id, audio_id in [
            ("V1", "A1"),
            ("V3", "A2"),
            ("V6", "A3"),
            ("V4", "A2"),
        ]:
            assert not is_undesirable(content, video_id, audio_id)

    def test_v2_a3_is_undesirable(self, content):
        """The specific pair Fig. 5 calls 'clearly undesirable'."""
        assert is_undesirable(content, "V2", "A3")

    def test_tolerance_widens_acceptance(self, content):
        assert not is_undesirable(content, "V1", "A3", tolerance=1.0)


class TestComputeQoE:
    def _result(self, content, video_id="V3", audio_id="A2", kbps=2000.0):
        player = FixedTracksPlayer(video_id, audio_id)
        return simulate(content, player, shared(constant(kbps)))

    def test_quality_accumulates_per_chunk(self, content):
        result = self._result(content)
        report = compute_qoe(result, content)
        expected_video = content.n_chunks * track_utility(content, V, "V3")
        assert report.video_quality == pytest.approx(expected_video)
        assert report.chunks_scored == content.n_chunks

    def test_no_switches_for_fixed_player(self, content):
        report = compute_qoe(self._result(content), content)
        assert report.switch_cost == 0.0
        assert report.video_switches == 0

    def test_rebuffer_penalty_reduces_score(self, content):
        smooth = compute_qoe(self._result(content, kbps=2000.0), content)
        starved = compute_qoe(self._result(content, kbps=400.0), content)
        assert starved.rebuffer_s > 0
        assert starved.score < smooth.score

    def test_undesirable_chunks_counted(self, content):
        result = self._result(content, video_id="V1", audio_id="A3")
        report = compute_qoe(result, content)
        assert report.undesirable_chunks == content.n_chunks

    def test_higher_quality_higher_score(self, content):
        low = compute_qoe(self._result(content, "V2", "A1"), content)
        high = compute_qoe(self._result(content, "V5", "A3"), content)
        assert high.score > low.score

    def test_as_dict_round_numbers(self, content):
        report = compute_qoe(self._result(content), content)
        data = report.as_dict()
        assert set(data) >= {"score", "quality", "rebuffer_s", "n_stalls"}

    def test_startup_penalty_applied(self, content):
        weights_with = QoEWeights(startup_per_s=1.0)
        weights_without = QoEWeights(startup_per_s=0.0)
        result = self._result(content)
        with_penalty = compute_qoe(result, content, weights_with)
        without_penalty = compute_qoe(result, content, weights_without)
        assert with_penalty.score < without_penalty.score

    def test_audio_weight_scales_audio_quality(self, content):
        result = self._result(content, "V1", "A3")
        heavy = compute_qoe(result, content, QoEWeights(audio_quality=1.0))
        light = compute_qoe(result, content, QoEWeights(audio_quality=0.1))
        assert heavy.quality > light.quality
