"""BOLA (dash.js BolaRule formulas)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlayerError
from repro.players.bola import (
    MINIMUM_BUFFER_S,
    BolaState,
    bola_quality,
    build_bola_state,
    min_buffer_for_quality,
)

TABLE1_VIDEO_KBPS = [111.0, 246.0, 473.0, 914.0, 1852.0, 3746.0]
TABLE1_AUDIO_KBPS = [128.0, 196.0, 384.0]


class TestBuildState:
    def test_utilities_offset_to_one(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS)
        assert state.utilities[0] == pytest.approx(1.0)
        assert state.utilities[-1] == pytest.approx(
            math.log(3746.0 / 111.0) + 1.0
        )

    def test_utilities_increasing(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS)
        assert list(state.utilities) == sorted(state.utilities)

    def test_dashjs_parameter_formulas(self):
        # bufferTime = max(12, 10 + 2*6) = 22 for the 6-rung video ladder.
        state = build_bola_state(TABLE1_VIDEO_KBPS, stable_buffer_time_s=12.0)
        buffer_time = 22.0
        expected_gp = (state.utilities[-1] - 1.0) / (buffer_time / MINIMUM_BUFFER_S - 1.0)
        assert state.gp == pytest.approx(expected_gp)
        assert state.vp == pytest.approx(MINIMUM_BUFFER_S / state.gp)

    def test_stable_buffer_time_dominates_when_larger(self):
        state = build_bola_state(TABLE1_AUDIO_KBPS, stable_buffer_time_s=40.0)
        expected_gp = (state.utilities[-1] - 1.0) / (40.0 / MINIMUM_BUFFER_S - 1.0)
        assert state.gp == pytest.approx(expected_gp)

    def test_single_rung_degenerate(self):
        state = build_bola_state([500.0])
        assert bola_quality(state, 0.0) == 0
        assert bola_quality(state, 100.0) == 0

    def test_unsorted_rejected(self):
        with pytest.raises(PlayerError):
            build_bola_state([200.0, 100.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(PlayerError):
            build_bola_state([0.0, 100.0])


class TestQualitySelection:
    def test_empty_buffer_selects_lowest(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS)
        assert bola_quality(state, 0.0) == 0

    def test_huge_buffer_selects_highest(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS)
        assert bola_quality(state, 100.0) == len(TABLE1_VIDEO_KBPS) - 1

    def test_monotone_in_buffer_level(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS)
        qualities = [bola_quality(state, level / 4.0) for level in range(0, 400)]
        assert qualities == sorted(qualities)

    def test_audio_a3_needs_about_14s(self):
        """The Fig. 5 mechanism: audio BOLA reaches A3 near 14 s of
        buffer — reachable only via the post-append overshoot."""
        state = build_bola_state(TABLE1_AUDIO_KBPS, stable_buffer_time_s=12.0)
        threshold = min_buffer_for_quality(state, 2)
        assert 12.0 < threshold < 16.0

    def test_video_v3_threshold_above_stable_buffer(self):
        state = build_bola_state(TABLE1_VIDEO_KBPS, stable_buffer_time_s=12.0)
        threshold = min_buffer_for_quality(state, 2)
        assert threshold > 12.0

    def test_negative_buffer_rejected(self):
        state = build_bola_state(TABLE1_AUDIO_KBPS)
        with pytest.raises(PlayerError):
            bola_quality(state, -1.0)

    def test_min_buffer_out_of_range(self):
        state = build_bola_state(TABLE1_AUDIO_KBPS)
        with pytest.raises(PlayerError):
            min_buffer_for_quality(state, 5)

    @settings(max_examples=40, deadline=None)
    @given(
        rates=st.lists(
            st.integers(min_value=10, max_value=10000),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        level=st.floats(min_value=0, max_value=80),
    )
    def test_quality_always_valid_rung(self, rates, level):
        state = build_bola_state(sorted(rates))
        quality = bola_quality(state, level)
        assert 0 <= quality < len(rates)

    # Integer kbps: rungs a few float-ulps apart make gp ~ 1e-16 and
    # Vp ~ 1e17, where the score arithmetic cancels catastrophically —
    # a regime no real ladder occupies.
    @settings(max_examples=40, deadline=None)
    @given(
        rates=st.lists(
            st.integers(min_value=10, max_value=10000),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    def test_monotonicity_property(self, rates):
        state = build_bola_state(sorted(rates))
        previous = -1
        for level in range(0, 120, 2):
            quality = bola_quality(state, float(level))
            assert quality >= previous
            previous = quality
