"""Manifest linter (Section 4.1 as machine-checkable rules).

These tests originally exercised the object-level
``repro.manifest.validate`` wrappers; that shim is retired, so they now
drive :func:`repro.analysis.analyze_files` directly on the *serialized*
manifests — the same text path the CLI lints. The selected rule subsets
mirror what each legacy entry point reported, keeping the assertions'
meaning identical across the migration.
"""

import pytest

from repro.analysis import (
    AnalyzerConfig,
    Finding,
    Severity,
    analyze_files,
    worst_severity,
)
from repro.analysis.spans import SourceSpan
from repro.core.combinations import hsub_combinations
from repro.manifest.dash import write_mpd
from repro.manifest.hls import (
    HlsMasterPlaylist,
    HlsRendition,
    HlsVariant,
    write_master_playlist,
)
from repro.manifest.packager import package_dash, package_hls

#: Rule IDs the legacy entry points reported, preserved per call shape.
MASTER_RULES = frozenset(
    {
        "HLS-CURATED",
        "HLS-AVERAGE-BANDWIDTH",
        "HLS-VARIANT-ORDER",
        "HLS-AUDIO-COVERAGE",
    }
)
PACKAGE_RULES = MASTER_RULES | {"HLS-TRACK-BITRATES", "HLS-BITRATE-TAG"}
DASH_RULES = frozenset({"DASH-COMBINATIONS", "DASH-BANDWIDTH-SANITY"})


def lint_hls_master(master):
    """Lint a master playlist in isolation (no media playlists)."""
    return analyze_files(
        {"master.m3u8": write_master_playlist(master)},
        AnalyzerConfig(selected=MASTER_RULES),
    )


def lint_hls_package(package):
    """Lint a full packaging: master + media playlists."""
    return analyze_files(
        package.write_all(), AnalyzerConfig(selected=PACKAGE_RULES)
    )


def lint_dash_manifest(manifest):
    """Lint a serialized DASH manifest."""
    return analyze_files(
        {"manifest.mpd": write_mpd(manifest)},
        AnalyzerConfig(selected=DASH_RULES),
    )


def rules(findings):
    return {f.rule for f in findings}


class TestHlsLint:
    def test_hall_flags_uncurated(self, hls_all):
        assert "HLS-CURATED" in rules(lint_hls_package(hls_all))

    def test_hsub_with_byteranges_is_clean(self, hls_sub):
        assert lint_hls_package(hls_sub) == []

    def test_chunk_files_without_tags_is_an_error(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            single_file=False,
            include_bitrate_tag=False,
        )
        findings = lint_hls_package(package)
        assert "HLS-TRACK-BITRATES" in rules(findings)
        assert worst_severity(findings) is Severity.ERROR

    def test_chunk_files_with_tags_is_clean(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            single_file=False,
            include_bitrate_tag=True,
        )
        assert lint_hls_package(package) == []

    def test_missing_average_bandwidth_flagged(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=500_000,
                    uri="V1_A1.m3u8",
                    video_id="V1",
                    audio_id="A1",
                ),
            ),
            renditions=(HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),),
        )
        assert "HLS-AVERAGE-BANDWIDTH" in rules(lint_hls_master(master))

    def test_bad_variant_order_flagged(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=900_000,
                    average_bandwidth_bps=700_000,
                    uri="V1_A3.m3u8",
                    video_id="V1",
                    audio_id="A3",
                ),
                HlsVariant(
                    bandwidth_bps=300_000,
                    average_bandwidth_bps=250_000,
                    uri="V1_A1.m3u8",
                    video_id="V1",
                    audio_id="A1",
                ),
            ),
            renditions=(
                HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),
                HlsRendition(group_id="audio", name="A3", uri="A3.m3u8"),
            ),
        )
        assert "HLS-VARIANT-ORDER" in rules(lint_hls_master(master))

    def test_unreferenced_audio_is_an_error(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=500_000,
                    average_bandwidth_bps=400_000,
                    uri="V1_A9.m3u8",
                    video_id="V1",
                    audio_id="A9",
                ),
            ),
            renditions=(HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),),
        )
        findings = lint_hls_master(master)
        assert "HLS-AUDIO-COVERAGE" in rules(findings)
        assert worst_severity(findings) is Severity.ERROR

    def test_packager_default_order_passes_variant_order_rule(self, hls_all):
        assert "HLS-VARIANT-ORDER" not in rules(lint_hls_package(hls_all))


class TestDashLint:
    def test_plain_mpd_flags_missing_combinations(self, dash_manifest):
        assert "DASH-COMBINATIONS" in rules(lint_dash_manifest(dash_manifest))

    def test_extended_mpd_is_clean(self, content, hsub_combos):
        manifest = package_dash(content, allowed_combinations=hsub_combos)
        assert lint_dash_manifest(manifest) == []

    def test_unsorted_bandwidths_flagged(self, content):
        from repro.manifest.dash import (
            DashAdaptationSet,
            DashManifest,
            DashRepresentation,
        )

        manifest = DashManifest(
            duration_s=10,
            adaptation_sets=(
                DashAdaptationSet(
                    content_type="video",
                    representations=(
                        DashRepresentation(rep_id="V2", bandwidth_bps=900),
                        DashRepresentation(rep_id="V1", bandwidth_bps=100),
                    ),
                ),
            ),
            allowed_combinations=(("V1", "A1"),),
        )
        assert "DASH-BANDWIDTH-SANITY" in rules(lint_dash_manifest(manifest))


def _finding(rule, severity):
    return Finding(
        rule=rule,
        severity=severity,
        message="msg",
        span=SourceSpan(file="f", line=1, col=1),
        category="test",
    )


class TestSeverity:
    def test_worst_of_empty_is_none(self):
        assert worst_severity([]) is None

    def test_error_dominates(self):
        findings = [
            _finding("A", Severity.INFO),
            _finding("B", Severity.ERROR),
            _finding("C", Severity.WARNING),
        ]
        assert worst_severity(findings) is Severity.ERROR

    def test_finding_str(self):
        text = str(_finding("R", Severity.WARNING))
        assert "WARNING" in text and "R" in text and "msg" in text


class TestShimRetirement:
    """The deprecated object-level wrappers are gone for good, but the
    CLI spellings they popularized keep parsing for one more release."""

    def test_validate_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.manifest.validate  # noqa: F401

    def test_manifest_package_no_longer_reexports_linting(self):
        import repro.manifest as manifest

        for legacy in (
            "lint_hls_master",
            "lint_hls_package",
            "lint_dash_manifest",
            "Finding",
            "worst_severity",
        ):
            assert not hasattr(manifest, legacy)
            assert legacy not in manifest.__all__

    @pytest.mark.parametrize("alias", ["dash", "hls"])
    def test_legacy_cli_format_aliases_still_parse(self, alias):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "--format", alias])
        assert args.format == alias
