"""Manifest linter (Section 4.1 as machine-checkable rules)."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.manifest.hls import HlsMasterPlaylist, HlsRendition, HlsVariant
from repro.manifest.packager import package_dash, package_hls
from repro.manifest.validate import (
    Finding,
    Severity,
    lint_dash_manifest,
    lint_hls_master,
    lint_hls_package,
    worst_severity,
)


def rules(findings):
    return {f.rule for f in findings}


class TestHlsLint:
    def test_hall_flags_uncurated(self, hls_all):
        assert "HLS-CURATED" in rules(lint_hls_package(hls_all))

    def test_hsub_with_byteranges_is_clean(self, hls_sub):
        assert lint_hls_package(hls_sub) == []

    def test_chunk_files_without_tags_is_an_error(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            single_file=False,
            include_bitrate_tag=False,
        )
        findings = lint_hls_package(package)
        assert "HLS-TRACK-BITRATES" in rules(findings)
        assert worst_severity(findings) is Severity.ERROR

    def test_chunk_files_with_tags_is_clean(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            single_file=False,
            include_bitrate_tag=True,
        )
        assert lint_hls_package(package) == []

    def test_missing_average_bandwidth_flagged(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=500_000,
                    uri="V1_A1.m3u8",
                    video_id="V1",
                    audio_id="A1",
                ),
            ),
            renditions=(HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),),
        )
        assert "HLS-AVERAGE-BANDWIDTH" in rules(lint_hls_master(master))

    def test_bad_variant_order_flagged(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=900_000,
                    average_bandwidth_bps=700_000,
                    uri="V1_A3.m3u8",
                    video_id="V1",
                    audio_id="A3",
                ),
                HlsVariant(
                    bandwidth_bps=300_000,
                    average_bandwidth_bps=250_000,
                    uri="V1_A1.m3u8",
                    video_id="V1",
                    audio_id="A1",
                ),
            ),
            renditions=(
                HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),
                HlsRendition(group_id="audio", name="A3", uri="A3.m3u8"),
            ),
        )
        assert "HLS-VARIANT-ORDER" in rules(lint_hls_master(master))

    def test_unreferenced_audio_is_an_error(self):
        master = HlsMasterPlaylist(
            variants=(
                HlsVariant(
                    bandwidth_bps=500_000,
                    average_bandwidth_bps=400_000,
                    uri="V1_A9.m3u8",
                    video_id="V1",
                    audio_id="A9",
                ),
            ),
            renditions=(HlsRendition(group_id="audio", name="A1", uri="A1.m3u8"),),
        )
        findings = lint_hls_master(master)
        assert "HLS-AUDIO-COVERAGE" in rules(findings)
        assert worst_severity(findings) is Severity.ERROR

    def test_packager_default_order_passes_variant_order_rule(self, hls_all):
        assert "HLS-VARIANT-ORDER" not in rules(lint_hls_package(hls_all))


class TestDashLint:
    def test_plain_mpd_flags_missing_combinations(self, dash_manifest):
        assert "DASH-COMBINATIONS" in rules(lint_dash_manifest(dash_manifest))

    def test_extended_mpd_is_clean(self, content, hsub_combos):
        manifest = package_dash(content, allowed_combinations=hsub_combos)
        assert lint_dash_manifest(manifest) == []

    def test_unsorted_bandwidths_flagged(self, content):
        from repro.manifest.dash import (
            DashAdaptationSet,
            DashManifest,
            DashRepresentation,
        )

        manifest = DashManifest(
            duration_s=10,
            adaptation_sets=(
                DashAdaptationSet(
                    content_type="video",
                    representations=(
                        DashRepresentation(rep_id="V2", bandwidth_bps=900),
                        DashRepresentation(rep_id="V1", bandwidth_bps=100),
                    ),
                ),
            ),
            allowed_combinations=(("V1", "A1"),),
        )
        assert "DASH-BANDWIDTH-SANITY" in rules(lint_dash_manifest(manifest))


class TestSeverity:
    def test_worst_of_empty_is_none(self):
        assert worst_severity([]) is None

    def test_error_dominates(self):
        findings = [
            Finding("A", Severity.INFO, "x"),
            Finding("B", Severity.ERROR, "y"),
            Finding("C", Severity.WARNING, "z"),
        ]
        assert worst_severity(findings) is Severity.ERROR

    def test_finding_str(self):
        text = str(Finding("R", Severity.WARNING, "msg"))
        assert "WARNING" in text and "R" in text and "msg" in text


class TestDeprecationShim:
    """The shim must warn with stacklevel=2 so the warning is
    attributed to the *caller's* file, not the shim module."""

    def _capture(self, call):
        import warnings

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            call()
        relevant = [
            w for w in captured if issubclass(w.category, DeprecationWarning)
        ]
        assert len(relevant) == 1
        return relevant[0]

    def test_warning_points_at_caller_file(self, hls_sub):
        warning = self._capture(lambda: lint_hls_package(hls_sub))
        assert warning.filename == __file__

    def test_master_and_dash_entry_points_too(self, hls_sub, content):
        from repro.manifest.packager import package_dash

        warning = self._capture(lambda: lint_hls_master(hls_sub.master))
        assert warning.filename == __file__
        manifest = package_dash(content)
        warning = self._capture(lambda: lint_dash_manifest(manifest))
        assert warning.filename == __file__

    def test_message_names_the_replacement(self, hls_sub):
        warning = self._capture(lambda: lint_hls_package(hls_sub))
        assert "repro.analysis.analyze_files" in str(warning.message)
