"""Bandwidth traces."""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, TraceError
from repro.net.traces import (
    BandwidthTrace,
    TraceSegment,
    constant,
    from_csv,
    from_pairs,
    load_trace,
    random_walk,
    save_trace,
    square_wave,
)

FIXTURE_3G = os.path.join(os.path.dirname(__file__), "fixtures", "trace_3g.csv")


class TestTraceSegment:
    def test_valid(self):
        assert TraceSegment(10, 500).kbps == 500

    def test_nonpositive_duration(self):
        with pytest.raises(TraceError):
            TraceSegment(0, 500)

    def test_negative_bandwidth(self):
        with pytest.raises(TraceError):
            TraceSegment(10, -1)


class TestConstant:
    def test_bandwidth_everywhere(self):
        trace = constant(700)
        for t in (0, 0.5, 10, 1e6):
            assert trace.bandwidth_at(t) == 700

    def test_never_changes(self):
        assert constant(700).next_change_after(3.7) == math.inf

    def test_average(self):
        assert constant(700).average_kbps() == 700
        assert constant(700).average_kbps(42.5) == 700


class TestPiecewise:
    def _trace(self):
        return from_pairs([(10, 100), (20, 400)])

    def test_bandwidth_in_segments(self):
        trace = self._trace()
        assert trace.bandwidth_at(0) == 100
        assert trace.bandwidth_at(9.999) == 100
        assert trace.bandwidth_at(10.0) == 400
        assert trace.bandwidth_at(29.9) == 400

    def test_loops(self):
        trace = self._trace()
        assert trace.period_s == 30
        assert trace.bandwidth_at(30.0) == 100
        assert trace.bandwidth_at(40.0) == 400
        assert trace.bandwidth_at(65.0) == 100  # 65 mod 30 = 5, first segment
        assert trace.bandwidth_at(75.0) == 400  # 75 mod 30 = 15, second

    def test_next_change(self):
        trace = self._trace()
        assert trace.next_change_after(0) == 10
        assert trace.next_change_after(10) == 30
        assert trace.next_change_after(9.999) == pytest.approx(10)
        assert trace.next_change_after(31) == 40

    def test_next_change_strictly_after(self):
        trace = self._trace()
        assert trace.next_change_after(30.0) == 40.0

    def test_next_change_never_in_the_past_at_period_multiples(self):
        """Regression: a query time a few ulps past a period multiple
        used to return a boundary <= t, freezing the event-driven
        simulator in zero-length steps (found by hypothesis)."""
        trace = from_pairs([(2.00001, 2045.0), (9.027980598517289, 791.0)])
        t = 3 * trace.period_s * (1 + 1e-16) + 1e-9
        for query in (t, 33.08397179555186, trace.period_s * 7):
            assert trace.next_change_after(query) > query

    def test_average_over_period(self):
        # (10*100 + 20*400) / 30 = 300
        assert self._trace().average_kbps() == pytest.approx(300)

    def test_average_over_partial_window(self):
        assert self._trace().average_kbps(10) == pytest.approx(100)
        assert self._trace().average_kbps(20) == pytest.approx(250)

    def test_min_max(self):
        trace = self._trace()
        assert trace.min_kbps() == 100
        assert trace.max_kbps() == 400

    def test_non_looping_holds_last_rate(self):
        trace = from_pairs([(10, 100), (20, 400)], loop=False)
        assert trace.bandwidth_at(1000) == 400
        assert trace.next_change_after(35) == math.inf

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            self._trace().bandwidth_at(-1)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            BandwidthTrace([])

    def test_scaled(self):
        scaled = self._trace().scaled(2.0)
        assert scaled.bandwidth_at(0) == 200
        assert scaled.average_kbps() == pytest.approx(600)

    def test_scaled_invalid_factor(self):
        with pytest.raises(TraceError):
            self._trace().scaled(0)

    def test_to_pairs(self):
        assert self._trace().to_pairs() == [(10, 100), (20, 400)]


class TestSquareWave:
    def test_alternation_and_average(self):
        trace = square_wave(200, 800, half_period_s=5)
        assert trace.bandwidth_at(0) == 200
        assert trace.bandwidth_at(5) == 800
        assert trace.average_kbps() == pytest.approx(500)


class TestRandomWalk:
    def test_mean_is_exact(self):
        trace = random_walk(600, seed=1)
        assert trace.average_kbps() == pytest.approx(600, rel=1e-9)

    def test_deterministic(self):
        assert random_walk(600, seed=2).to_pairs() == random_walk(600, seed=2).to_pairs()

    def test_seeds_differ(self):
        assert random_walk(600, seed=1).to_pairs() != random_walk(600, seed=2).to_pairs()

    def test_floor_respected(self):
        trace = random_walk(200, seed=3, spread=1.5, floor_kbps=50)
        assert trace.min_kbps() >= 50

    def test_needs_two_segments(self):
        with pytest.raises(TraceError):
            random_walk(600, seed=1, n_segments=1)

    def test_mean_below_floor_rejected(self):
        """The floor clip makes the target unreachable — the contract
        raises instead of silently missing the mean."""
        with pytest.raises(TraceError):
            random_walk(40, seed=1, floor_kbps=50)

    def test_mean_exact_even_under_heavy_floor_clipping(self):
        """The regression the residual redistribution fixes: a wide
        spread close to the floor used to leave the time-average short
        of the documented mean."""
        trace = random_walk(80, seed=5, spread=2.5, floor_kbps=50)
        assert trace.min_kbps() >= 50
        assert trace.average_kbps() == pytest.approx(80, rel=1e-8)

    @given(
        mean=st.floats(60, 3000),
        seed=st.integers(0, 10_000),
        spread=st.floats(0.0, 3.0),
        n_segments=st.integers(2, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_average_always_matches_the_contract(
        self, mean, seed, spread, n_segments
    ):
        """Property form of the docstring promise: for any admissible
        (mean >= floor) parameters, the time-average equals the target
        mean to float round-off, and the floor still holds."""
        trace = random_walk(mean, seed=seed, spread=spread, n_segments=n_segments)
        assert trace.min_kbps() >= 50.0
        assert trace.average_kbps() == pytest.approx(mean, rel=1e-8)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = from_pairs([(10, 100.5), (20, 400.25)])
        path = str(tmp_path / "trace.csv")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.to_pairs() == trace.to_pairs()

    def test_load_bad_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("10,abc\n")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_load_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# only a comment\n")
        with pytest.raises(TraceError):
            load_trace(str(path))


class TestLoadTraceHardening:
    """A half-broken measured trace must fail at load, naming file:line."""

    @pytest.mark.parametrize(
        "row",
        ["nan,500", "10,nan", "inf,500", "10,-inf", "-5,500", "0,500", "10,-1"],
    )
    def test_pathological_rows_rejected(self, tmp_path, row):
        path = tmp_path / "bad.csv"
        path.write_text(f"10,100\n{row}\n")
        with pytest.raises(TraceError) as excinfo:
            load_trace(str(path))
        message = str(excinfo.value)
        assert f"{path}:2" in message  # the offending line, not just the file

    def test_trace_error_is_a_value_error(self, tmp_path):
        """Callers that predate TraceError catch ValueError; both work."""
        assert issubclass(TraceError, ValueError)
        assert issubclass(TraceError, ReproError)
        path = tmp_path / "bad.csv"
        path.write_text("nan,500\n")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestFromCsv:
    def test_fixture_imports(self):
        trace = from_csv(FIXTURE_3G)
        pairs = trace.to_pairs()
        # 12 timestamped rows at 5 s spacing -> 12 segments (the final
        # row inherits the previous interval), all 5 s long.
        assert len(pairs) == 12
        assert all(duration == 5.0 for duration, _ in pairs)
        assert pairs[0] == (5.0, 842.0)
        assert pairs[-1] == (5.0, 602.0)
        assert trace.min_kbps() == 95.0
        assert trace.max_kbps() == 1184.0

    def test_measurement_holds_until_next_timestamp(self):
        trace = from_csv(FIXTURE_3G)
        assert trace.bandwidth_at(0.0) == 842.0
        assert trace.bandwidth_at(4.999) == 842.0
        assert trace.bandwidth_at(5.0) == 611.0
        assert trace.bandwidth_at(57.0) == 602.0  # final row's interval

    def test_whitespace_separated_columns(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 1000\n2 2000\n")
        assert from_csv(str(path)).to_pairs() == [(2.0, 1000.0), (2.0, 2000.0)]

    def test_units_scale_bandwidth(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,5\n10,3\n")
        assert from_csv(str(path), unit="mbps").bandwidth_at(0) == 5000.0
        assert from_csv(str(path), unit="bps").bandwidth_at(0) == 0.005
        with pytest.raises(TraceError):
            from_csv(str(path), unit="furlongs")

    def test_uneven_intervals(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,100\n1,200\n4,300\n")
        # Final row inherits the previous (3 s) interval.
        assert from_csv(str(path)).to_pairs() == [
            (1.0, 100.0),
            (3.0, 200.0),
            (3.0, 300.0),
        ]

    def test_non_increasing_timestamps_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,100\n5,200\n5,300\n")
        with pytest.raises(TraceError) as excinfo:
            from_csv(str(path))
        assert f"{path}:3" in str(excinfo.value)

    def test_single_row_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,100\n")
        with pytest.raises(TraceError):
            from_csv(str(path))

    @pytest.mark.parametrize(
        "row", ["nan,100", "5,inf", "5,-1", "5", "5,1,2", "t,100"]
    )
    def test_bad_rows_name_the_line(self, tmp_path, row):
        path = tmp_path / "trace.csv"
        path.write_text(f"0,100\n{row}\n")
        with pytest.raises(TraceError) as excinfo:
            from_csv(str(path))
        assert f"{path}:2" in str(excinfo.value)

    def test_no_loop(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,100\n10,200\n")
        trace = from_csv(str(path), loop=False)
        assert trace.bandwidth_at(1000.0) == 200.0


class TestTraceProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100),
                st.floats(min_value=0, max_value=1e5),
            ),
            min_size=1,
            max_size=8,
        ),
        t=st.floats(min_value=0, max_value=1e4),
    )
    def test_bandwidth_matches_some_segment(self, pairs, t):
        trace = from_pairs(pairs)
        rates = {kbps for _, kbps in pairs}
        assert trace.bandwidth_at(t) in rates

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100),
                st.floats(min_value=0, max_value=1e5),
            ),
            min_size=2,
            max_size=8,
        ),
        t=st.floats(min_value=0, max_value=1e4),
    )
    def test_next_change_is_in_the_future_and_rate_constant_until(self, pairs, t):
        trace = from_pairs(pairs)
        boundary = trace.next_change_after(t)
        assert boundary > t
        if math.isfinite(boundary):
            midpoint = (t + boundary) / 2
            assert trace.bandwidth_at(midpoint) == trace.bandwidth_at(t)


class TestTraceCursor:
    """The cursor is a pure cache: any query order, identical answers.

    The reference below is the predicate the historical linear scan
    answered — the largest ``i`` with ``t >= starts[i] - 1e-12`` — so
    these tests pin the cursor/bisect fast paths to the exact semantics
    the kernel's recordings were made under.
    """

    @staticmethod
    def _reference_locate(trace, t):
        if trace.loops:
            t = math.fmod(t, trace.period_s)
        elif t >= trace.period_s:
            return len(trace.segments) - 1
        starts, offset = [], 0.0
        for segment in trace.segments:
            starts.append(offset)
            offset += segment.duration_s
        for i in range(len(starts) - 1, -1, -1):
            if t >= starts[i] - 1e-12:
                return i
        return 0

    def _check_sequence(self, trace, times):
        for t in times:
            want = trace.segments[self._reference_locate(trace, t)].kbps
            assert trace.bandwidth_at(t) == want, t

    def test_seek_backward_after_advancing(self):
        trace = from_pairs([(10, 100), (10, 200), (10, 300), (10, 400)])
        # Advance the cursor to the last segment, then jump back.
        self._check_sequence(trace, [35.0, 5.0, 25.0, 0.0, 15.0, 39.9])

    def test_seek_past_end_of_nonlooping_trace(self):
        trace = BandwidthTrace(
            [TraceSegment(10, 100), TraceSegment(10, 900)], loop=False
        )
        assert trace.bandwidth_at(500.0) == 900  # last rate holds
        assert trace.next_change_after(500.0) == math.inf
        # Seeking backward from past-the-end still answers exactly.
        assert trace.bandwidth_at(5.0) == 100
        assert trace.next_change_after(5.0) == 10.0

    def test_repeated_queries_at_same_time(self):
        trace = from_pairs([(10, 100), (10, 200), (10, 300)])
        for t in (0.0, 10.0, 15.0, 29.999999999, 10.0, 10.0):
            first = (trace.bandwidth_at(t), trace.next_change_after(t))
            for _ in range(3):
                assert (trace.bandwidth_at(t), trace.next_change_after(t)) == first

    def test_loop_wraparound_resets_cursor_correctly(self):
        trace = from_pairs([(10, 100), (10, 200), (10, 300)])
        # Monotonic queries crossing the loop boundary: fmod lands the
        # wrapped time back in segment 0 while the cursor sits at 2.
        self._check_sequence(trace, [25.0, 29.9, 30.0, 31.0, 55.0, 61.0])

    def test_boundary_epsilon_matches_reference(self):
        trace = from_pairs([(10, 100), (10, 200)])
        for t in (10.0 - 1e-13, 10.0 - 1e-11, 10.0, 10.0 + 1e-13):
            self._check_sequence(trace, [t])

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50),
                st.floats(min_value=1, max_value=1e4),
            ),
            min_size=1,
            max_size=10,
        ),
        times=st.lists(
            st.floats(min_value=0, max_value=2e3), min_size=1, max_size=30
        ),
        loop=st.booleans(),
    )
    def test_any_query_order_matches_reference(self, pairs, times, loop):
        trace = BandwidthTrace(
            [TraceSegment(d, k) for d, k in pairs], loop=loop
        )
        self._check_sequence(trace, times)

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50),
                st.floats(min_value=1, max_value=1e4),
            ),
            min_size=1,
            max_size=10,
        ),
        times=st.lists(
            st.floats(min_value=0, max_value=2e3), min_size=1, max_size=20
        ),
    )
    def test_fused_lookup_bit_identical_to_separate_calls(self, pairs, times):
        fused = from_pairs(pairs)
        separate = from_pairs(pairs)
        for t in times:
            kbps, boundary = fused.rate_and_next_change(t)
            assert kbps == separate.bandwidth_at(t)
            assert boundary == separate.next_change_after(t)


class TestSharedTraceCursors:
    """One immutable trace, many per-consumer cursors.

    The shared-state hazard SHARE-MUTATES-SHARED exists to catch: a
    lookup cursor memoized *on the trace object* lets one consumer's
    seek corrupt another's fast path. The fix keeps the trace stateless
    and hands each consumer its own ``TraceCursor`` view; these tests
    pin that contract by adversarially interleaving two consumers over
    a single trace object.
    """

    def _trace(self):
        return from_pairs([(10, 100), (10, 200), (10, 300), (10, 400)])

    def test_interleaved_cursors_match_stateless_answers(self):
        trace = self._trace()
        a, b = trace.cursor(), trace.cursor()
        # a walks forward, b seeks backward, strictly alternating —
        # the worst case for a cursor shared through the trace.
        a_times = [0.0, 12.0, 25.0, 38.0, 1.0]
        b_times = [38.0, 25.0, 12.0, 0.0, 39.9]
        for ta, tb in zip(a_times, b_times):
            assert a.bandwidth_at(ta) == trace.bandwidth_at(ta)
            assert b.bandwidth_at(tb) == trace.bandwidth_at(tb)
            assert a.next_change_after(ta) == trace.next_change_after(ta)
            assert b.next_change_after(tb) == trace.next_change_after(tb)

    def test_cursor_queries_leave_the_trace_untouched(self):
        trace = self._trace()
        before = dict(vars(trace))
        cursor = trace.cursor()
        for t in (35.0, 2.0, 17.0, 39.0, 0.0):
            cursor.bandwidth_at(t)
            cursor.rate_and_next_change(t)
        assert vars(trace) == before

    def test_fused_lookup_interleaved_across_cursors(self):
        trace = self._trace()
        a, b = trace.cursor(), trace.cursor()
        for t in (5.0, 15.0, 25.0, 35.0, 45.0, 3.0):
            want = (trace.bandwidth_at(t), trace.next_change_after(t))
            assert a.rate_and_next_change(t) == want
            # b deliberately queries a different epoch first.
            b.bandwidth_at((t + 20.0) % 40.0)
            assert b.rate_and_next_change(t) == want

    def test_cursor_exposes_its_trace(self):
        trace = self._trace()
        assert trace.cursor().trace is trace

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50),
                st.floats(min_value=1, max_value=1e4),
            ),
            min_size=1,
            max_size=8,
        ),
        a_times=st.lists(
            st.floats(min_value=0, max_value=500), min_size=1, max_size=15
        ),
        b_times=st.lists(
            st.floats(min_value=0, max_value=500), min_size=1, max_size=15
        ),
        loop=st.booleans(),
    )
    def test_two_cursors_any_interleaving_matches_reference(
        self, pairs, a_times, b_times, loop
    ):
        trace = BandwidthTrace(
            [TraceSegment(d, k) for d, k in pairs], loop=loop
        )
        a, b = trace.cursor(), trace.cursor()
        for i in range(max(len(a_times), len(b_times))):
            if i < len(a_times):
                t = a_times[i]
                assert a.bandwidth_at(t) == trace.bandwidth_at(t)
            if i < len(b_times):
                t = b_times[i]
                assert b.next_change_after(t) == trace.next_change_after(t)
