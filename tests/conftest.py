"""Shared fixtures: the reference content and manifests."""

from __future__ import annotations

import pytest

from repro.core.combinations import all_combinations, hsub_combinations
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import drama_show


@pytest.fixture(scope="session")
def content():
    """The Table-1 drama show (session-scoped: it is immutable)."""
    return drama_show()


@pytest.fixture(scope="session")
def dash_manifest(content):
    return package_dash(content)


@pytest.fixture(scope="session")
def hls_all(content):
    """The H_all packaging (all 18 combinations)."""
    return package_hls(content)


@pytest.fixture(scope="session")
def hls_sub(content):
    """The H_sub packaging (curated 6 combinations)."""
    return package_hls(content, combinations=hsub_combinations(content))


@pytest.fixture(scope="session")
def hall_combos(content):
    return all_combinations(content)


@pytest.fixture(scope="session")
def hsub_combos(content):
    return hsub_combinations(content)
