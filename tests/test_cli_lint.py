"""The reworked ``repro-abr lint`` command: paths, formats, fixes,
baselines, and the 0/1/2 exit-code contract."""

import json

import pytest

from repro.cli import main

BROKEN_MEDIA = """#EXTM3U
#EXT-X-PLAYLIST-TYPE:VOD
#EXTINF:4.50000,
#EXT-X-BYTERANGE:500000@0
V1_00000.mp4
"""

CLEAN_MEDIA = """#EXTM3U
#EXT-X-VERSION:4
#EXT-X-TARGETDURATION:4
#EXT-X-PLAYLIST-TYPE:VOD
#EXTINF:4.00000,
#EXT-X-BYTERANGE:500000@0
V1_00000.mp4
#EXT-X-ENDLIST
"""


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(CLEAN_MEDIA)
        assert main(["lint", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        assert main(["lint", str(target)]) == 1
        assert "HLS-TARGETDURATION-PRESENT" in capsys.readouterr().out

    def test_warning_only_exits_zero(self, tmp_path):
        target = tmp_path / "V1.m3u8"
        target.write_text(CLEAN_MEDIA.replace("#EXT-X-ENDLIST\n", ""))
        assert main(["lint", str(target)]) == 0

    def test_parse_failure_exits_two(self, tmp_path, capsys):
        target = tmp_path / "manifest.mpd"
        target.write_text("<MPD><Period></MPD>")
        assert main(["lint", str(target)]) == 2
        assert "parse failure" in capsys.readouterr().err

    def test_unreadable_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "missing.m3u8")]) == 2

    def test_bad_python_exits_two(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def broken(:\n")
        assert main(["lint", str(target)]) == 2


class TestFormats:
    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        assert main(["lint", "--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-abr-lint"
        assert any(
            f["rule"] == "HLS-TARGETDURATION-PRESENT" for f in payload["findings"]
        )

    def test_sarif_format(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        assert main(["lint", "--format", "sarif", str(target)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_directory_recursion_includes_python(self, tmp_path, capsys):
        (tmp_path / "V1.m3u8").write_text(CLEAN_MEDIA)
        (tmp_path / "mod.py").write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "DET-WALLCLOCK" in capsys.readouterr().out


class TestFix:
    def test_fix_rewrites_file_and_relints_clean(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        assert main(["lint", "--fix", str(target)]) == 0
        assert "clean" in capsys.readouterr().out
        fixed = target.read_text()
        assert "#EXT-X-TARGETDURATION" in fixed
        assert fixed.rstrip().endswith("#EXT-X-ENDLIST")
        # And a second run finds nothing left to do.
        assert main(["lint", str(target)]) == 0

    def test_fix_without_paths_is_usage_error(self, capsys):
        assert main(["lint", "--fix"]) == 2
        assert "--fix" in capsys.readouterr().err


class TestRuleSelection:
    def test_disable(self, tmp_path):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        code = main(
            [
                "lint",
                "--disable",
                "HLS-TARGETDURATION-PRESENT,HLS-VERSION-GATE,HLS-ENDLIST",
                str(target),
            ]
        )
        assert code == 0

    def test_select(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        assert main(["lint", "--select", "HLS-ENDLIST", str(target)]) == 0
        out = capsys.readouterr().out
        assert "HLS-ENDLIST" in out
        assert "HLS-TARGETDURATION-PRESENT" not in out


class TestBaseline:
    def test_write_then_apply_baseline(self, tmp_path, capsys):
        target = tmp_path / "V1.m3u8"
        target.write_text(BROKEN_MEDIA)
        baseline = tmp_path / "lint-baseline.json"
        assert (
            main(["lint", "--write-baseline", str(baseline), str(target)]) == 1
        )
        capsys.readouterr()
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path):
        target = tmp_path / "V1.m3u8"
        target.write_text(CLEAN_MEDIA)
        assert (
            main(["lint", "--baseline", str(tmp_path / "nope.json"), str(target)])
            == 2
        )


class TestGeneratedPackagingMode:
    """No paths: the legacy packaging-of-the-reference-title behavior."""

    def test_default_is_hls_text(self, capsys):
        assert main(["lint"]) == 0
        assert "HLS-CURATED" in capsys.readouterr().out

    def test_manifest_dash(self, capsys):
        assert main(["lint", "--manifest", "dash"]) == 0
        assert "DASH-COMBINATIONS" in capsys.readouterr().out

    def test_sarif_over_generated_packaging(self, capsys):
        assert main(["lint", "--format", "sarif", "--curated"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


class TestJobs:
    def test_jobs_output_matches_serial(self, tmp_path, capsys):
        for i in range(4):
            (tmp_path / f"mod{i}.py").write_text(
                "import random\nx = random.random()\n"
            )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        serial = capsys.readouterr().out
        code = main(["lint", str(tmp_path), "--format", "json", "--jobs", "3"])
        parallel = capsys.readouterr().out
        assert code == 1
        assert parallel == serial

    def test_jobs_parse_failure_still_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("pass\n")
        (tmp_path / "bad.py").write_text("def broken(:\n")
        assert main(["lint", str(tmp_path), "--jobs", "2"]) == 2
        assert "parse failure" in capsys.readouterr().err
