"""Playback tracker: the demuxed stall semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.playback import PlaybackState, PlaybackTracker


def make_tracker(duration=300.0, startup=5.0, resume=5.0):
    return PlaybackTracker(
        content_duration_s=duration,
        startup_threshold_s=startup,
        resume_threshold_s=resume,
    )


class TestStartup:
    def test_initial_state(self):
        tracker = make_tracker()
        assert tracker.state is PlaybackState.STARTUP
        assert tracker.position_s == 0.0
        assert tracker.startup_delay_s is None

    def test_does_not_start_below_threshold(self):
        tracker = make_tracker()
        tracker.update_state(now=1.0, frontier_s=4.9, all_downloaded=False)
        assert tracker.state is PlaybackState.STARTUP

    def test_starts_at_threshold(self):
        tracker = make_tracker()
        tracker.update_state(now=2.0, frontier_s=5.0, all_downloaded=False)
        assert tracker.state is PlaybackState.PLAYING
        assert tracker.startup_delay_s == 2.0

    def test_starts_when_everything_downloaded(self):
        tracker = make_tracker(duration=3.0, startup=5.0)
        tracker.update_state(now=1.0, frontier_s=3.0, all_downloaded=True)
        assert tracker.state is PlaybackState.PLAYING

    def test_threshold_shrinks_near_content_end(self):
        tracker = make_tracker(duration=4.0, startup=5.0)
        # Only 4 s of content exist; 4 s buffered must be enough.
        tracker.update_state(now=1.0, frontier_s=4.0, all_downloaded=False)
        assert tracker.state is PlaybackState.PLAYING

    def test_no_advance_while_startup(self):
        tracker = make_tracker()
        tracker.advance(3.0, frontier_s=0.0)
        assert tracker.position_s == 0.0


class TestStalls:
    def _playing_tracker(self):
        tracker = make_tracker()
        tracker.update_state(now=0.0, frontier_s=10.0, all_downloaded=False)
        assert tracker.state is PlaybackState.PLAYING
        return tracker

    def test_stall_when_frontier_reached(self):
        tracker = self._playing_tracker()
        tracker.advance(10.0, frontier_s=10.0)
        tracker.update_state(now=10.0, frontier_s=10.0, all_downloaded=False)
        assert tracker.state is PlaybackState.STALLED
        assert len(tracker.stalls) == 1
        assert tracker.stalls[0].start_s == 10.0
        assert tracker.stalls[0].end_s is None

    def test_resume_closes_stall(self):
        tracker = self._playing_tracker()
        tracker.advance(10.0, frontier_s=10.0)
        tracker.update_state(now=10.0, frontier_s=10.0, all_downloaded=False)
        tracker.update_state(now=14.0, frontier_s=16.0, all_downloaded=False)
        assert tracker.state is PlaybackState.PLAYING
        assert tracker.stalls[0].end_s == 14.0
        assert tracker.stalls[0].duration_s == pytest.approx(4.0)

    def test_no_resume_below_resume_threshold(self):
        tracker = self._playing_tracker()
        tracker.advance(10.0, frontier_s=10.0)
        tracker.update_state(now=10.0, frontier_s=10.0, all_downloaded=False)
        tracker.update_state(now=11.0, frontier_s=12.0, all_downloaded=False)
        assert tracker.state is PlaybackState.STALLED

    def test_end_of_content_is_not_a_stall(self):
        tracker = make_tracker(duration=10.0)
        tracker.update_state(now=0.0, frontier_s=10.0, all_downloaded=True)
        tracker.advance(10.0, frontier_s=10.0)
        tracker.update_state(now=10.0, frontier_s=10.0, all_downloaded=True)
        assert tracker.state is PlaybackState.ENDED
        assert tracker.stalls == []

    def test_close_seals_open_stall(self):
        tracker = self._playing_tracker()
        tracker.advance(10.0, frontier_s=10.0)
        tracker.update_state(now=10.0, frontier_s=10.0, all_downloaded=False)
        tracker.close(now=12.5)
        assert tracker.stalls[0].end_s == 12.5


class TestAdvance:
    def test_overshoot_rejected(self):
        tracker = make_tracker()
        tracker.update_state(now=0.0, frontier_s=10.0, all_downloaded=False)
        with pytest.raises(SimulationError):
            tracker.advance(11.0, frontier_s=10.0)

    def test_negative_step_rejected(self):
        tracker = make_tracker()
        with pytest.raises(SimulationError):
            tracker.advance(-0.1, frontier_s=10.0)

    def test_position_tracks_play_time(self):
        tracker = make_tracker()
        tracker.update_state(now=0.0, frontier_s=50.0, all_downloaded=False)
        tracker.advance(7.25, frontier_s=50.0)
        assert tracker.position_s == pytest.approx(7.25)


class TestValidation:
    def test_duration_positive(self):
        with pytest.raises(SimulationError):
            make_tracker(duration=0)

    def test_thresholds_positive(self):
        with pytest.raises(SimulationError):
            make_tracker(startup=0)
        with pytest.raises(SimulationError):
            make_tracker(resume=-1)
