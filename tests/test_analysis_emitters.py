"""Output emitters: text, JSON, and SARIF 2.1.0 shape guarantees."""

import json
from pathlib import Path

from repro.analysis import analyze_text, render_json, render_sarif, render_text

EMPTY_SARIF_GOLDEN = Path(__file__).parent / "fixtures" / "lint" / "empty.sarif"

BROKEN_MEDIA = """#EXTM3U
#EXT-X-PLAYLIST-TYPE:VOD
#EXTINF:4.5,
#EXT-X-BYTERANGE:500000@0
V1.mp4
"""


def findings():
    return analyze_text("V1.m3u8", BROKEN_MEDIA)


class TestText:
    def test_clean_output(self):
        assert render_text([]) == "clean: no findings\n"

    def test_compiler_style_lines(self):
        out = render_text(findings())
        assert "V1.m3u8:1:1 [ERROR] HLS-TARGETDURATION-PRESENT:" in out
        assert out.rstrip().endswith("finding(s)")


class TestJson:
    def test_payload_shape(self):
        payload = json.loads(render_json(findings()))
        assert payload["version"] == 1
        assert payload["tool"] == "repro-abr-lint"
        first = payload["findings"][0]
        for key in ("rule", "severity", "category", "message", "file",
                    "line", "col", "fingerprint", "fixable"):
            assert key in first
        assert first["file"] == "V1.m3u8"

    def test_stable_across_runs(self):
        assert render_json(findings()) == render_json(findings())


class TestSarif:
    def test_sarif_210_envelope(self):
        log = json.loads(render_sarif(findings()))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-abr-lint"
        assert isinstance(driver["rules"], list) and driver["rules"]

    def test_rules_metadata_and_indices(self):
        log = json.loads(render_sarif(findings()))
        run = log["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(set(rule_ids))  # unique and sorted
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")

    def test_result_locations(self):
        log = json.loads(render_sarif(findings()))
        result = log["runs"][0]["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "V1.m3u8"
        region = location["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_partial_fingerprints_stable(self):
        log1 = json.loads(render_sarif(findings()))
        log2 = json.loads(render_sarif(findings()))
        prints1 = [r["partialFingerprints"] for r in log1["runs"][0]["results"]]
        prints2 = [r["partialFingerprints"] for r in log2["runs"][0]["results"]]
        assert prints1 == prints2
        assert all("reproLintFingerprint/v1" in p for p in prints1)

    def test_rule_descriptors_carry_category_and_reference(self):
        log = json.loads(render_sarif(findings()))
        for descriptor in log["runs"][0]["tool"]["driver"]["rules"]:
            assert descriptor["properties"]["category"]
            assert descriptor["properties"]["reference"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error", "warning", "note",
            )

    def test_empty_findings_still_valid(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestZeroFindings:
    """A clean run must produce stable, machine-consumable output in
    every format — CI diffs against these exact bytes."""

    def test_text_clean_summary_line(self):
        assert render_text([]) == "clean: no findings\n"

    def test_json_emits_empty_findings_list(self):
        payload = json.loads(render_json([]))
        assert payload["findings"] == []
        assert payload["tool"] == "repro-abr-lint"
        assert payload["version"] == 1

    def test_sarif_matches_golden_file(self):
        assert render_sarif([]) == EMPTY_SARIF_GOLDEN.read_text()

    def test_sarif_golden_is_valid_210_run(self):
        log = json.loads(EMPTY_SARIF_GOLDEN.read_text())
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["name"] == "repro-abr-lint"
