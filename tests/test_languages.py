"""Multi-language audio catalogues and their HLS packaging."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.errors import MediaError
from repro.analysis import analyze_text
from repro.manifest.hls import parse_master_playlist, write_master_playlist
from repro.manifest.packager import package_hls_multilanguage
from repro.media.languages import LanguageCatalog, language_track_id, make_catalog
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.server import CdnCache, OriginServer
from repro.net.traces import constant
from repro.sim.session import simulate

LANGS = ("en", "es", "fr")


@pytest.fixture(scope="module")
def catalog(content):
    return make_catalog(content, LANGS, default_lang="en")


class TestCatalog:
    def test_structure(self, catalog):
        assert catalog.n_video_tracks == 6
        assert catalog.n_audio_rungs == 3
        assert catalog.n_languages == 3

    def test_default_defaults_to_first(self, content):
        assert make_catalog(content, ["es", "en"]).default_lang == "es"

    def test_audio_track_ids(self, catalog):
        ids = catalog.audio_track_ids()
        assert len(ids) == 9
        assert language_track_id("A2", "es") in ids

    def test_empty_languages_rejected(self, content):
        with pytest.raises(MediaError):
            make_catalog(content, [])

    def test_duplicate_languages_rejected(self, content):
        with pytest.raises(MediaError):
            make_catalog(content, ["en", "en"])

    def test_unknown_default_rejected(self, content):
        with pytest.raises(MediaError):
            LanguageCatalog(base=content, languages=("en",), default_lang="de")

    def test_unknown_language_lookup(self, catalog):
        with pytest.raises(MediaError):
            catalog.content_for("de")


class TestPerLanguageContent:
    def test_ladder_shape_preserved(self, catalog, content):
        spanish = catalog.content_for("es")
        assert [t.avg_kbps for t in spanish.audio] == [
            t.avg_kbps for t in content.audio
        ]
        assert spanish.audio.track_ids == ("A1-es", "A2-es", "A3-es")

    def test_video_shared_across_languages(self, catalog):
        english = catalog.content_for("en")
        spanish = catalog.content_for("es")
        for track in english.video:
            assert english.chunk_table.sizes(track.track_id) == (
                spanish.chunk_table.sizes(track.track_id)
            )

    def test_audio_sizes_mirror_base(self, catalog, content):
        english = catalog.content_for("en")
        assert english.chunk_table.sizes("A2-en") == content.chunk_table.sizes("A2")

    def test_playable(self, catalog):
        from repro.core.combinations import curated_combinations
        from repro.core.player import RecommendedPlayer

        spanish = catalog.content_for("es")
        combos = curated_combinations(spanish)
        result = simulate(spanish, RecommendedPlayer(combos), shared(constant(900.0)))
        assert result.completed
        assert all(
            audio_id.endswith("-es")
            for _, _, audio_id in result.selected_combinations()
        )


class TestStorageAccounting:
    def test_demuxed_scales_with_languages_only_in_audio(self, catalog, content):
        single = make_catalog(content, ["en"])
        delta = catalog.storage_bits_demuxed() - single.storage_bits_demuxed()
        audio_bits = sum(
            content.chunk_table.total_bits(t.track_id) for t in content.audio
        )
        assert delta == pytest.approx(2 * audio_bits)

    def test_muxed_blowup_grows_with_languages(self, catalog, content):
        single = make_catalog(content, ["en"])
        assert catalog.storage_ratio() > single.storage_ratio()

    def test_ratio_formula(self, catalog, content):
        video_bits = sum(
            content.chunk_table.total_bits(t.track_id) for t in content.video
        )
        audio_bits = sum(
            content.chunk_table.total_bits(t.track_id) for t in content.audio
        )
        n, l_count, m = 3, 3, 6
        expected = (video_bits * n * l_count + audio_bits * l_count * m) / (
            video_bits + audio_bits * l_count
        )
        assert catalog.storage_ratio() == pytest.approx(expected)


class TestMultiLanguagePackaging:
    def test_group_per_rung(self, catalog):
        package = package_hls_multilanguage(catalog)
        groups = package.master.audio_group_ids
        assert set(groups) == {"audio-A1", "audio-A2", "audio-A3"}

    def test_every_group_has_every_language(self, catalog):
        package = package_hls_multilanguage(catalog)
        for group in package.master.audio_group_ids:
            langs = {r.language for r in package.master.audio_renditions(group)}
            assert langs == set(LANGS)

    def test_default_language_marked(self, catalog):
        package = package_hls_multilanguage(catalog)
        defaults = [r for r in package.master.renditions if r.default]
        assert defaults and all(r.language == "en" for r in defaults)

    def test_variants_reference_rung_groups(self, catalog):
        package = package_hls_multilanguage(
            catalog, combinations=hsub_combinations(catalog.base)
        )
        for variant in package.master.variants:
            assert variant.audio_group == f"audio-{variant.audio_id}"

    def test_media_playlists_cover_all_language_tracks(self, catalog):
        package = package_hls_multilanguage(catalog)
        for audio_id in catalog.audio_track_ids():
            assert audio_id in package.media_playlists
        for track in catalog.base.video:
            assert track.track_id in package.media_playlists

    def test_language_roundtrips_through_m3u8(self, catalog):
        package = package_hls_multilanguage(catalog)
        parsed = parse_master_playlist(write_master_playlist(package.master))
        langs = {r.language for r in parsed.renditions}
        assert langs == set(LANGS)

    def test_lints_clean_with_curation(self, catalog):
        package = package_hls_multilanguage(
            catalog, combinations=hsub_combinations(catalog.base)
        )
        # Text-level lint of the serialized master (the retired
        # manifest.validate shim's master rules all live in the
        # analyzer; a lone master runs no package-level rules).
        text = write_master_playlist(package.master)
        assert analyze_text("master.m3u8", text) == []


class TestCdnWithLanguages:
    def test_video_cache_reuse_across_languages(self, catalog):
        """Viewers in different languages share cached video chunks —
        the Section-1 CDN argument at its strongest."""
        english = catalog.content_for("en")
        spanish = catalog.content_for("es")
        # One origin holding both languages' audio and the shared video.
        merged_sizes = {
            t: english.chunk_table.sizes(t) for t in english.chunk_table.track_ids
        }
        merged_sizes.update(
            {
                t: spanish.chunk_table.sizes(t)
                for t in spanish.chunk_table.track_ids
            }
        )
        from repro.media.chunks import ChunkTable
        from repro.media.content import Content
        from repro.media.tracks import make_ladder

        audio_tracks = list(english.audio) + list(spanish.audio)
        merged = Content(
            name="multi",
            video=english.video,
            audio=make_ladder(MediaType.AUDIO, audio_tracks),
            chunk_table=ChunkTable(english.chunk_duration_s, merged_sizes),
        )
        origin = OriginServer(merged)
        cache = CdnCache(origin, capacity_bits=origin.storage_bits())
        for index in range(merged.n_chunks):
            cache.fetch_position("V4", "A2-en", index)
        hits = 0.0
        total = 0.0
        for index in range(merged.n_chunks):
            stats = cache.fetch_position("V4", "A2-es", index)
            hits += stats["hit_bits"]
            total += stats["bits"]
        assert hits / total > 0.7  # the shared V4 bytes dominate
