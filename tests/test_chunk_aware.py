"""Chunk-size-aware joint adaptation."""

import pytest

from repro.core.chunk_aware import ChunkAwarePlayer
from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import PlayerError
from repro.manifest.packager import package_hls
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.sim.session import simulate

V = MediaType.VIDEO


def chunk_rates(content):
    return {
        track_id: [
            content.chunk_table.chunk(track_id, i).bitrate_kbps
            for i in range(content.n_chunks)
        ]
        for track_id in content.chunk_table.track_ids
    }


class TestConstruction:
    def test_requires_rates_for_all_tracks(self, content, hsub_combos):
        with pytest.raises(PlayerError):
            ChunkAwarePlayer(hsub_combos, {"V1": [100.0]})

    def test_lookahead_validated(self, content, hsub_combos):
        with pytest.raises(PlayerError):
            ChunkAwarePlayer(hsub_combos, chunk_rates(content), lookahead=0)

    def test_from_hls_package(self, content, hls_sub, hsub_combos):
        player = ChunkAwarePlayer.from_hls_package(hsub_combos, hls_sub)
        assert player.lookahead == 3

    def test_from_blind_package_rejected(self, content, hsub_combos):
        package = package_hls(
            content,
            combinations=hsub_combos,
            single_file=False,
            include_bitrate_tag=False,
        )
        with pytest.raises(PlayerError):
            ChunkAwarePlayer.from_hls_package(hsub_combos, package)


class TestPricing:
    def test_rate_is_positionwise(self, content, hsub_combos):
        player = ChunkAwarePlayer(hsub_combos, chunk_rates(content), lookahead=1)
        combo = hsub_combos.by_name("V3+A2")
        rates = {
            player._rate_of(combo, position) for position in range(content.n_chunks)
        }
        assert len(rates) > 1  # VBR: the price varies with position

    def test_rate_matches_actual_chunks(self, content, hsub_combos):
        player = ChunkAwarePlayer(hsub_combos, chunk_rates(content), lookahead=1)
        combo = hsub_combos.by_name("V3+A2")
        expected = (
            content.chunk("V3", 7).bitrate_kbps + content.chunk("A2", 7).bitrate_kbps
        )
        assert player._rate_of(combo, 7) == pytest.approx(expected)

    def test_lookahead_window_clamps_at_end(self, content, hsub_combos):
        player = ChunkAwarePlayer(hsub_combos, chunk_rates(content), lookahead=5)
        combo = hsub_combos.by_name("V1+A1")
        # No IndexError at the last position.
        assert player._rate_of(combo, content.n_chunks - 1) > 0


class TestBehaviour:
    def test_completes_and_conforms(self, content, hsub_combos):
        player = ChunkAwarePlayer(hsub_combos, chunk_rates(content))
        result = simulate(content, player, shared(constant(900.0)))
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_no_stalls_across_links(self, content, hsub_combos):
        for kbps in (500.0, 900.0, 2000.0):
            player = ChunkAwarePlayer(hsub_combos, chunk_rates(content))
            result = simulate(content, player, shared(constant(kbps)))
            assert result.n_stalls == 0, kbps

    def test_vbr_awareness_never_loses_to_declared_pricing(self, content, hsub_combos):
        """Chunk-aware pricing uses true sizes; on this title it should
        match or beat declared-bitrate pricing in selected video rate
        without stalling."""
        aware = ChunkAwarePlayer(hsub_combos, chunk_rates(content))
        declared = RecommendedPlayer(hsub_combos, rate_key="declared")
        aware_result = simulate(content, aware, shared(constant(900.0)))
        declared_result = simulate(content, declared, shared(constant(900.0)))
        assert aware_result.n_stalls == 0
        assert aware_result.time_weighted_bitrate_kbps(V) >= (
            declared_result.time_weighted_bitrate_kbps(V) - 1e-6
        )
