"""Shaka Player model (Section 3.3 behaviours)."""

import pytest

from repro.errors import PlayerError
from repro.manifest.packager import package_dash, package_hls
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.shaka import (
    ShakaPlayer,
    VariantOption,
    variants_from_dash,
    variants_from_hls,
)
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestVariantBuilding:
    def test_from_hls_all(self, hls_all):
        variants = variants_from_hls(hls_all.master)
        assert len(variants) == 18
        bandwidths = [v.bandwidth_kbps for v in variants]
        assert bandwidths == sorted(bandwidths)

    def test_from_dash_builds_cross_product(self, dash_manifest):
        """"the player creates all the combinations of video and audio
        tracks when parsing the DASH manifest file"."""
        variants = variants_from_dash(dash_manifest)
        assert len(variants) == 18
        names = {v.name for v in variants}
        assert "V1+A3" in names and "V6+A1" in names

    def test_dash_aggregates_are_declared_sums(self, dash_manifest):
        variants = {v.name: v for v in variants_from_dash(dash_manifest)}
        assert variants["V3+A2"].bandwidth_kbps == pytest.approx(473 + 196)

    def test_dash_ignores_allowed_combinations_extension(self, content, hsub_combos):
        # Shaka models the *measured* behaviour: it does not honour the
        # repro extension element.
        manifest = package_dash(content, allowed_combinations=hsub_combos)
        assert len(variants_from_dash(manifest)) == 18

    def test_empty_variants_rejected(self):
        with pytest.raises(PlayerError):
            ShakaPlayer([])


class TestSelectionRule:
    def _player(self, hls_all):
        return ShakaPlayer.from_hls(hls_all.master)

    def test_highest_below_estimate(self, hls_all):
        player = self._player(hls_all)
        assert player.choose_variant(500.0).name == "V2+A2"

    def test_default_estimate_selects_v2a2(self, hls_all):
        """The Fig. 4(a) selection at the 500 kbps default."""
        player = self._player(hls_all)
        estimate = player.estimator.get_estimate_kbps()
        assert estimate == 500.0
        assert player.choose_variant(estimate).name == "V2+A2"

    def test_nothing_fits_falls_back_to_lowest(self, hls_all):
        player = self._player(hls_all)
        assert player.choose_variant(100.0).name == "V1+A1"

    def test_huge_estimate_selects_highest(self, hls_all):
        player = self._player(hls_all)
        assert player.choose_variant(10_000.0).name == "V6+A3"

    def test_close_requirements_cause_fluctuation(self, hls_all):
        """Five combinations inside 300-700 kbps (the Section 3.3 list)."""
        player = self._player(hls_all)
        picks = {player.choose_variant(float(e)).name for e in range(320, 701, 10)}
        assert picks == {"V1+A2", "V2+A1", "V2+A2", "V1+A3", "V2+A3"}


class TestEndToEnd:
    def test_fig4a_pinned_estimate(self, content, hls_all):
        player = ShakaPlayer.from_hls(hls_all.master)
        result = simulate(content, player, shared(constant(1000.0)))
        assert player.estimator.valid_samples == 0
        estimates = {e.kbps for e in result.estimate_timeline}
        assert estimates == {500.0}
        assert result.combination_names()[-1] == "V2+A2"

    def test_2mbps_link_recovers(self, content, hls_all):
        # At 2 Mbps, even a half-share (1000 kbps) is borderline, but
        # solo tails at 2 Mbps pass the filter and unpin the estimate.
        player = ShakaPlayer.from_hls(hls_all.master)
        result = simulate(content, player, shared(constant(2100.0)))
        assert player.estimator.valid_samples > 0
        assert max(e.kbps for e in result.estimate_timeline) > 500.0

    def test_independent_streams_download_concurrently(self, content, hls_all):
        # No chunk-level sync: audio and video requests overlap in time
        # (which is what halves each stream's throughput samples).
        player = ShakaPlayer.from_hls(hls_all.master)
        result = simulate(content, player, shared(constant(1000.0)))
        video = result.downloads_of(V)
        audio = result.downloads_of(A)
        overlaps = sum(
            1
            for video_dl, audio_dl in zip(video, audio)
            if video_dl.started_at < audio_dl.completed_at
            and audio_dl.started_at < video_dl.completed_at
        )
        assert overlaps >= len(video) // 2

    def test_buffering_goal_respected(self, content, hls_all):
        player = ShakaPlayer.from_hls(hls_all.master, buffering_goal_s=10.0)
        result = simulate(content, player, shared(constant(3000.0)))
        max_level = max(
            max(s.video_level_s, s.audio_level_s) for s in result.buffer_timeline
        )
        assert max_level <= 10.0 + content.chunk_duration_s + 1e-6

    def test_dash_same_mechanism_as_hls_hall(self, content, dash_manifest, hls_all):
        """Section 3.3: under DASH, Shaka builds all combinations and
        behaves "the same as that for HLS when using manifest file
        H_all". The estimate is equally pinned at 500 kbps; the selected
        combination is in both cases the highest one fitting 500 kbps —
        under HLS's peak aggregates that is V2+A2 (460), while DASH's
        declared-bitrate sums make it V1+A3 (495), a small but real
        consequence of the two manifests declaring bandwidth
        differently (Section 2.3)."""
        hls_player = ShakaPlayer.from_hls(hls_all.master)
        dash_player = ShakaPlayer.from_dash(dash_manifest)
        hls_result = simulate(content, hls_player, shared(constant(1000.0)))
        dash_result = simulate(content, dash_player, shared(constant(1000.0)))
        assert {e.kbps for e in hls_result.estimate_timeline} == {500.0}
        assert {e.kbps for e in dash_result.estimate_timeline} == {500.0}
        assert hls_result.combination_names()[-1] == "V2+A2"
        assert dash_result.combination_names()[-1] == "V1+A3"
        assert dash_player.choose_variant(500.0).name == "V1+A3"
