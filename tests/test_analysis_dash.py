"""DASH MPD rules of the static analyzer."""

import pytest

from repro.analysis import (
    AnalysisParseFailure,
    Severity,
    analyze_text,
)


def rules(findings):
    return {f.rule for f in findings}


GOOD_MPD = """<?xml version="1.0" encoding="utf-8"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static" mediaPresentationDuration="PT60S" profiles="urn:mpeg:dash:profile:isoff-on-demand:2011">
  <Period>
    <AdaptationSet contentType="video" mimeType="video/mp4">
      <SegmentTemplate media="$RepresentationID$_$Number$.mp4" duration="4" timescale="1"/>
      <Representation id="V1" bandwidth="500000"/>
      <Representation id="V2" bandwidth="900000"/>
    </AdaptationSet>
    <AdaptationSet contentType="audio" mimeType="audio/mp4">
      <SegmentTemplate media="$RepresentationID$_$Number$.mp4" duration="4" timescale="1"/>
      <Representation id="A1" bandwidth="64000"/>
    </AdaptationSet>
  </Period>
  <AllowedCombinations xmlns="urn:repro:dash:extensions:2019">
    <Pair video="V1" audio="A1"/>
  </AllowedCombinations>
</MPD>
"""


class TestDashRules:
    def test_good_mpd_is_clean(self):
        assert analyze_text("manifest.mpd", GOOD_MPD) == []

    def test_missing_duration(self):
        text = GOOD_MPD.replace(' mediaPresentationDuration="PT60S"', "")
        findings = analyze_text("manifest.mpd", text)
        f = [x for x in findings if x.rule == "DASH-DURATION"]
        assert f and f[0].severity is Severity.ERROR

    def test_missing_profiles(self):
        text = GOOD_MPD.replace(
            ' profiles="urn:mpeg:dash:profile:isoff-on-demand:2011"', ""
        )
        assert "DASH-PROFILES" in rules(analyze_text("manifest.mpd", text))

    def test_missing_content_and_mime_type(self):
        text = GOOD_MPD.replace(' contentType="video" mimeType="video/mp4"', "")
        assert "DASH-MIME-TYPE" in rules(analyze_text("manifest.mpd", text))

    def test_mime_type_alone_suffices(self):
        text = GOOD_MPD.replace(' contentType="video"', "")
        assert "DASH-MIME-TYPE" not in rules(analyze_text("manifest.mpd", text))

    def test_missing_bandwidth(self):
        text = GOOD_MPD.replace(' bandwidth="500000"', "")
        assert "DASH-REP-BANDWIDTH" in rules(analyze_text("manifest.mpd", text))

    def test_non_integer_bandwidth(self):
        text = GOOD_MPD.replace('bandwidth="500000"', 'bandwidth="fast"')
        assert "DASH-REP-BANDWIDTH" in rules(analyze_text("manifest.mpd", text))

    def test_duplicate_rep_ids(self):
        text = GOOD_MPD.replace('id="V2"', 'id="V1"')
        findings = analyze_text("manifest.mpd", text)
        dupes = [f for f in findings if f.rule == "DASH-REP-ID-UNIQUE"]
        assert dupes and "V1" in dupes[0].message

    def test_segment_template_without_number_or_time(self):
        text = GOOD_MPD.replace("$RepresentationID$_$Number$.mp4", "seg.mp4")
        assert "DASH-SEGMENT-TEMPLATE" in rules(analyze_text("manifest.mpd", text))

    def test_missing_combinations_extension(self):
        start = GOOD_MPD.index("  <AllowedCombinations")
        end = GOOD_MPD.index("</AllowedCombinations>") + len(
            "</AllowedCombinations>\n"
        )
        text = GOOD_MPD[:start] + GOOD_MPD[end:]
        assert "DASH-COMBINATIONS" in rules(analyze_text("manifest.mpd", text))

    def test_descending_bandwidths_flagged(self):
        text = GOOD_MPD.replace('bandwidth="500000"', 'bandwidth="950000"')
        findings = analyze_text("manifest.mpd", text)
        sanity = [f for f in findings if f.rule == "DASH-BANDWIDTH-SANITY"]
        assert sanity and "video" in sanity[0].message

    def test_findings_point_at_element_lines(self):
        text = GOOD_MPD.replace(' bandwidth="64000"', "")
        findings = analyze_text("manifest.mpd", text)
        f = [x for x in findings if x.rule == "DASH-REP-BANDWIDTH"][0]
        # The A1 Representation element sits on line 11 of the fixture.
        assert f.file == "manifest.mpd"
        assert text.splitlines()[f.line - 1].strip().startswith("<Representation")


class TestDashParsing:
    def test_malformed_xml_is_parse_failure(self):
        with pytest.raises(AnalysisParseFailure):
            analyze_text("manifest.mpd", "<MPD><Period></MPD>")

    def test_non_mpd_root_is_parse_failure(self):
        with pytest.raises(AnalysisParseFailure):
            analyze_text("manifest.mpd", "<Playlist/>")
