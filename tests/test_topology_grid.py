"""Cohort grids through the hardened runner: determinism + resume.

The contracts under test extend the ISSUE-4 chaos guarantees to
cohort-level cells: a grid of :class:`CohortJob` cells produces
fingerprint-identical results under ``workers=1`` and ``workers=N``, a
SIGKILLed driver resumes from the checkpoint recomputing only the
incomplete cells, and cohort results ride the same content-addressed
cache as single-session jobs (pickle round-trip included).
"""

import os
import signal
import subprocess
import sys
import time

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import check_outcomes
from repro.net.resilience import FailoverPolicy
from repro.runner import GridRunner, ResultCache, run_jobs
from repro.topology import (
    CohortJob,
    FaultDomainKind,
    FaultDomainSchedule,
    FaultWindow,
    TopologySpec,
)


def cohort_grid(n=4, n_sessions=12, seed0=0):
    """Small heterogeneous cohort cells: clean and outage-stricken."""
    topology = TopologySpec.uniform(2, capacity_kbps=20_000.0)
    outage = FaultDomainSchedule(
        kinds=(),
        pinned=(
            FaultWindow(FaultDomainKind.EDGE_OUTAGE, "edge-1", 40.0, 70.0),
        ),
    )
    return [
        CohortJob(
            topology=topology,
            faults=outage if i % 2 else None,
            n_sessions=n_sessions,
            arrival_burst_s=10.0,
            failover=FailoverPolicy(),
            seed=seed0 + i // 2,
        )
        for i in range(n)
    ]


def fingerprints(outcomes):
    return [o.result.fingerprint() for o in outcomes]


class TestCohortGridDeterminism:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parallel_matches_serial_byte_identically(self, seed):
        jobs = cohort_grid(4, seed0=seed)
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        assert all(o.ok for o in serial) and all(o.ok for o in parallel)
        assert [o.job for o in parallel] == jobs  # input order preserved
        assert fingerprints(parallel) == fingerprints(serial)
        # Cohort-level invariants hold for every cell (check_outcomes
        # dispatches on the result type).
        assert check_outcomes(parallel) == []

    def test_cohort_results_survive_the_cache(self, tmp_path):
        jobs = cohort_grid(2)
        cache = ResultCache(str(tmp_path))
        first = run_jobs(jobs, workers=1, cache=cache)
        assert cache.stats.misses == 2
        warm = run_jobs(jobs, workers=1, cache=ResultCache(str(tmp_path)))
        assert all(o.cached for o in warm)
        assert fingerprints(warm) == fingerprints(first)

    def test_cohort_result_pickle_round_trips(self):
        outcome = run_jobs(cohort_grid(1), workers=1)[0]
        clone = pickle.loads(pickle.dumps(outcome.result))
        assert clone.fingerprint() == outcome.result.fingerprint()

    def test_grid_runner_mixes_into_reports(self, tmp_path):
        runner = GridRunner(workers=2, cache_dir=str(tmp_path))
        jobs = cohort_grid(2)
        results = runner.results(jobs)
        assert len(results) == 2
        assert all(
            sum(r.verdict_counts.values()) == r.n_sessions for r in results
        )


class TestCohortCheckpointResume:
    def test_sigkilled_driver_resumes_with_zero_recomputation(
        self, tmp_path
    ):
        """The CI cohort-chaos scenario: SIGKILL the driver mid-grid,
        resume with workers=2, assert every checkpointed cohort cell is
        a cache hit and the rows match the clean serial run."""
        cache_dir = str(tmp_path / "cache")
        n_jobs = 6
        script = (
            "from repro.runner import run_jobs, ResultCache\n"
            "import test_topology_grid\n"
            f"jobs = test_topology_grid.cohort_grid({n_jobs})\n"
            f"run_jobs(jobs, workers=1, cache=ResultCache({cache_dir!r}))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src, os.path.dirname(__file__), env.get("PYTHONPATH", "")]
        )
        driver = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            probe = ResultCache(cache_dir)
            deadline = time.monotonic() + 120.0
            while probe.entry_count() < 2 and time.monotonic() < deadline:
                if driver.poll() is not None:
                    break
                time.sleep(0.01)
            driver.send_signal(signal.SIGKILL)
        finally:
            driver.wait(timeout=30)

        completed = ResultCache(cache_dir).entry_count()
        assert completed >= 2  # the checkpoint stream got that far

        jobs = cohort_grid(n_jobs)
        resumed_cache = ResultCache(cache_dir)
        outcomes = run_jobs(jobs, workers=2, cache=resumed_cache)
        assert all(o.ok for o in outcomes)
        assert resumed_cache.stats.hits == completed
        assert resumed_cache.stats.misses == n_jobs - completed
        assert fingerprints(outcomes) == fingerprints(
            run_jobs(jobs, workers=1)
        )
