"""Compatibility-surface snapshots: extraction determinism, committed
snapshots vs the tree, the ``--update-surfaces`` CLI path, and
serial/parallel parity for the SURF-* family."""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalyzerConfig, analyze_files
from repro.analysis.code_surfaces import (
    SURFACE_FILES,
    build_snapshots,
    keyed_spec_closure,
    load_surfaces,
    write_surfaces,
)
from repro.analysis.engine import prepare
from repro.analysis.parallel import analyze_files_parallel
from repro.cli import main

REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src"
SURFACES = REPO_ROOT / "surfaces"


def _tree_files():
    """The src tree keyed the way the CLI keys it (repo-relative posix
    paths), so module names line up with the committed snapshots."""
    return {
        p.relative_to(REPO_ROOT).as_posix(): p.read_text()
        for p in sorted(SRC.rglob("*.py"))
    }


def _prepare(files):
    prepared, ctx = prepare(files, AnalyzerConfig())
    sources = {a.name: a.python for a in prepared if a.python is not None}
    return sources, ctx.program


SPEC_MODULE = '''\
import hashlib
import json
from dataclasses import dataclass

GEN_SPEC_SCHEMA_VERSION = {version}
GEN_MAGIC = {magic!r}


@dataclass(frozen=True)
class GenJob:
{field_lines}

    def spec_dict(self):
        return {spec_dict}

    def key(self):
        payload = json.dumps(self.spec_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
'''


def _spec_module(field_names, version, magic):
    field_lines = "\n".join(f"    {name}: int" for name in field_names)
    spec_dict = (
        "{"
        + ", ".join(f'"{name}": self.{name}' for name in field_names)
        + "}"
    )
    return SPEC_MODULE.format(
        version=version,
        magic=magic,
        field_lines=field_lines,
        spec_dict=spec_dict,
    )


class TestCommittedSnapshots:
    def test_committed_snapshots_exist(self):
        for filename in SURFACE_FILES.values():
            assert (SURFACES / filename).is_file(), filename

    def test_committed_snapshots_match_tree(self):
        """The acceptance pin: re-extracting the four surfaces from the
        current tree reproduces surfaces/*.json exactly. Any mismatch
        means someone changed a surface without --update-surfaces (and
        the SURF-* rules would fire on the next lint)."""
        sources, program = _prepare(_tree_files())
        snapshots = build_snapshots(sources, program)
        assert set(snapshots) == set(SURFACE_FILES)
        for name, filename in SURFACE_FILES.items():
            committed = json.loads((SURFACES / filename).read_text())
            assert snapshots[name] == committed, filename

    def test_keyed_closure_covers_both_job_roots(self):
        _sources, program = _prepare(_tree_files())
        closure = keyed_spec_closure(program)
        assert {"SimulationJob", "CohortJob"} <= set(closure)
        # Nested specs reached through annotations, not just the roots.
        assert {"TraceSpec", "FailureSpec", "TopologySpec"} <= set(closure)

    def test_load_surfaces_tolerates_broken_files(self, tmp_path):
        (tmp_path / "events.json").write_text("{not json")
        (tmp_path / "framing.json").write_text('["not", "a", "dict"]')
        (tmp_path / "cli.json").write_text('{"surface": "cli"}')
        loaded = load_surfaces(str(tmp_path))
        assert set(loaded) == {"cli"}


class TestExtractionDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        suffixes=st.lists(
            st.text(alphabet="abcdefghij", min_size=1, max_size=6),
            unique=True,
            min_size=1,
            max_size=5,
        ),
        version=st.integers(min_value=0, max_value=9),
        magic=st.binary(min_size=1, max_size=4),
    )
    def test_snapshot_extraction_is_deterministic_and_idempotent(
        self, suffixes, version, magic
    ):
        """Two independent parses of the same module extract identical
        snapshots, and writing them twice is byte-stable (the second
        run rewrites nothing)."""
        field_names = [f"field_{suffix}" for suffix in suffixes]
        text = _spec_module(field_names, version, magic)
        files = {"gen_module.py": text}
        first = build_snapshots(*_prepare(files))
        second = build_snapshots(*_prepare(files))
        assert first == second
        assert set(first) == {"spec_keys", "framing"}

        with tempfile.TemporaryDirectory() as directory:
            sources, program = _prepare(files)
            written = write_surfaces(directory, sources, program)
            bytes_one = {
                name: (Path(directory) / name).read_bytes()
                for name in written
            }
            # Second write from a fresh parse: same files, same bytes.
            sources2, program2 = _prepare(files)
            written2 = write_surfaces(directory, sources2, program2)
            assert written2 == written
            for name in written:
                assert (Path(directory) / name).read_bytes() == bytes_one[
                    name
                ]
            # The canonical form round-trips through load_surfaces.
            loaded = load_surfaces(directory)
            assert loaded["spec_keys"] == first["spec_keys"]
            assert loaded["framing"] == first["framing"]

    def test_recorded_layout_matches_runtime_key(self):
        """The spec-keys snapshot records exactly the keys SimulationJob
        feeds into sha256 — extraction and runtime cannot disagree."""
        from repro.runner.jobs import SimulationJob

        snap = json.loads((SURFACES / "spec_keys.json").read_text())
        recorded = snap["classes"]["SimulationJob"]["spec_keys"]
        job = SimulationJob()
        assert recorded == list(job.spec_dict().keys())


class TestUpdateSurfacesCli:
    def _spec_file(self, tmp_path):
        target = tmp_path / "gen_module.py"
        target.write_text(_spec_module(["field_a", "field_b"], 1, b"\x01G"))
        return target

    def test_update_creates_snapshots_then_lints_clean(
        self, tmp_path, capsys
    ):
        target = self._spec_file(tmp_path)
        surf = tmp_path / "surf"
        assert (
            main(
                [
                    "lint",
                    str(target),
                    "--surfaces",
                    str(surf),
                    "--update-surfaces",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "surface snapshot" in err
        assert (surf / "spec_keys.json").is_file()
        assert (surf / "framing.json").is_file()
        # A plain lint against the fresh snapshots is clean.
        assert main(["lint", str(target), "--surfaces", str(surf)]) == 0

    def test_update_is_idempotent_byte_for_byte(self, tmp_path):
        target = self._spec_file(tmp_path)
        surf = tmp_path / "surf"
        argv = [
            "lint",
            str(target),
            "--surfaces",
            str(surf),
            "--update-surfaces",
        ]
        assert main(argv) == 0
        before = {
            p.name: p.read_bytes() for p in sorted(surf.iterdir())
        }
        assert main(argv) == 0
        after = {p.name: p.read_bytes() for p in sorted(surf.iterdir())}
        assert after == before

    def test_drift_fires_then_update_clears(self, tmp_path, capsys):
        target = self._spec_file(tmp_path)
        surf = tmp_path / "surf"
        assert (
            main(
                [
                    "lint",
                    str(target),
                    "--surfaces",
                    str(surf),
                    "--update-surfaces",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Grow a field without bumping the governing version: key churn.
        text = target.read_text().replace(
            "    field_a: int\n", "    field_a: int\n    field_z: int\n"
        )
        target.write_text(text)
        assert main(["lint", str(target), "--surfaces", str(surf)]) == 1
        out = capsys.readouterr().out
        assert "SURF-KEY-CHURN" in out
        assert "GEN_SPEC_SCHEMA_VERSION" in out
        # Deliberate change: refresh the snapshot, lint is clean again.
        assert (
            main(
                [
                    "lint",
                    str(target),
                    "--surfaces",
                    str(surf),
                    "--update-surfaces",
                ]
            )
            == 0
        )
        assert main(["lint", str(target), "--surfaces", str(surf)]) == 0

    def test_explicit_missing_surfaces_dir_is_usage_error(
        self, tmp_path, capsys
    ):
        target = self._spec_file(tmp_path)
        assert (
            main(
                [
                    "lint",
                    str(target),
                    "--surfaces",
                    str(tmp_path / "nope"),
                ]
            )
            == 2
        )
        assert "does not exist" in capsys.readouterr().err

    def test_default_surfaces_dir_absent_is_tolerated(
        self, tmp_path, monkeypatch
    ):
        target = self._spec_file(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(target)]) == 0

    def test_update_requires_disk_paths(self, capsys):
        assert main(["lint", "--update-surfaces"]) == 2
        assert "explicit path" in capsys.readouterr().err


class TestParallelParity:
    def test_surf_findings_identical_serial_vs_parallel(self, tmp_path):
        """Drifted tree linted with snapshots armed: two workers and
        one worker must report byte-identical SURF findings."""
        files = _tree_files()
        # Mutate one keyed spec in-memory: parity must hold on a tree
        # that actually produces SURF findings, not just on silence.
        jobs = files["src/repro/runner/jobs.py"]
        marker = "    rtt_s: float = 0.0"
        assert marker in jobs
        files["src/repro/runner/jobs.py"] = jobs.replace(
            marker, marker + "\n    drifted_field: int = 0", 1
        )
        config = AnalyzerConfig(surfaces_dir=str(SURFACES))
        serial = analyze_files(files, config)
        parallel = analyze_files_parallel(files, config, jobs=2)
        assert [str(f) for f in serial] == [str(f) for f in parallel]
        assert any(f.rule == "SURF-KEY-CHURN" for f in serial)
