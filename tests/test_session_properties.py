"""Property-based session invariants across random scenarios.

Whatever the trace and whoever the player, a completed session must
conserve time, download every chunk exactly once, keep buffers sane and
produce scoreable results. These are the invariants every experiment
implicitly leans on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bola_joint import JointBolaPlayer
from repro.core.combinations import curated_combinations
from repro.core.mpc import MpcPlayer
from repro.core.player import RecommendedPlayer
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import synthetic_content
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import from_pairs
from repro.players.dashjs import DashJsPlayer
from repro.players.exoplayer import ExoPlayerDash
from repro.players.fixed import FixedTracksPlayer
from repro.players.shaka import ShakaPlayer
from repro.qoe.metrics import compute_qoe
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO

#: Small but non-trivial content: 3 video rungs, 2 audio rungs, 1 minute.
CONTENT = synthetic_content(
    "prop", [150, 400, 1000], [64, 192], n_chunks=12, seed=13
)

PLAYER_FACTORIES = [
    lambda: FixedTracksPlayer("V1", "A1"),
    lambda: FixedTracksPlayer("V3", "A2", balanced=False),
    lambda: RecommendedPlayer(curated_combinations(CONTENT)),
    lambda: JointBolaPlayer(curated_combinations(CONTENT)),
    lambda: MpcPlayer(curated_combinations(CONTENT)),
    lambda: ExoPlayerDash(package_dash(CONTENT)),
    lambda: ShakaPlayer.from_hls(package_hls(CONTENT).master),
    lambda: DashJsPlayer(package_dash(CONTENT)),
]

trace_strategy = st.lists(
    st.tuples(
        st.floats(min_value=2.0, max_value=40.0),
        st.integers(min_value=150, max_value=6000),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=25, deadline=None)
@given(
    pairs=trace_strategy,
    player_index=st.integers(min_value=0, max_value=len(PLAYER_FACTORIES) - 1),
    rtt_ms=st.sampled_from([0, 30]),
)
def test_session_invariants(pairs, player_index, rtt_ms):
    trace = from_pairs([(d, float(k)) for d, k in pairs])
    player = PLAYER_FACTORIES[player_index]()
    result = simulate(CONTENT, player, shared(trace, rtt_s=rtt_ms / 1000.0))

    # 1. Completion (the link never drops below 150 kbps, so the
    # session always finishes well inside the default time cap).
    assert result.completed

    # 2. Time conservation: wall time = startup + content + rebuffering.
    assert result.ended_at_s == pytest.approx(
        result.startup_delay_s + CONTENT.duration_s + result.total_rebuffer_s,
        abs=1e-6,
    )

    # 3. Every chunk of both media downloaded exactly once, in order.
    for medium in (V, A):
        indices = [r.chunk_index for r in result.downloads_of(medium)]
        assert indices == list(range(CONTENT.n_chunks))

    # 4. Downloaded bytes match the chunk table; segments sum to size.
    for record in result.downloads:
        expected = CONTENT.chunk(record.track_id, record.chunk_index).size_bits
        assert record.size_bits == expected
        assert sum(s.bits for s in record.segments) == pytest.approx(expected)
        assert record.completed_at >= record.started_at

    # 5. Buffer samples are non-negative and time-ordered.
    times = [s.t for s in result.buffer_timeline]
    assert times == sorted(times)
    for sample in result.buffer_timeline:
        assert sample.video_level_s >= -1e-9
        assert sample.audio_level_s >= -1e-9

    # 6. Stalls are closed, disjoint, ordered and within the session.
    for stall in result.stalls:
        assert stall.end_s is not None
        assert 0 <= stall.start_s <= stall.end_s <= result.ended_at_s + 1e-9
    for first, second in zip(result.stalls, result.stalls[1:]):
        assert second.start_s >= first.end_s - 1e-9

    # 7. The QoE model can always score the session.
    report = compute_qoe(result, CONTENT)
    assert report.chunks_scored == CONTENT.n_chunks


@settings(max_examples=15, deadline=None)
@given(
    pairs=trace_strategy,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_sessions_are_deterministic(pairs, seed):
    """Same inputs, same outputs — the simulator has no hidden state."""
    trace = from_pairs([(d, float(k)) for d, k in pairs])

    def run():
        player = RecommendedPlayer(curated_combinations(CONTENT))
        return simulate(CONTENT, player, shared(trace))

    first, second = run(), run()
    assert first.ended_at_s == second.ended_at_s
    assert first.combination_names() == second.combination_names()
    assert [s.t for s in first.buffer_timeline] == [
        s.t for s in second.buffer_timeline
    ]
