"""Bandwidth estimators — including the exact Shaka filter arithmetic."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlayerError
from repro.media.tracks import MediaType
from repro.players.estimators import (
    Ewma,
    ExoBandwidthMeter,
    HarmonicMeanEstimator,
    ShakaEstimator,
    SharedThroughputEstimator,
    SlidingPercentile,
)
from repro.sim.records import DownloadRecord, ProgressSegment
from repro.units import kilobytes_to_bits


def make_record(
    kbps: float,
    duration_s: float,
    started_at: float = 0.0,
    medium: MediaType = MediaType.VIDEO,
    segments=None,
):
    """A download that ran at a constant rate."""
    bits = kbps * 1000.0 * duration_s
    if segments is None:
        segments = (
            ProgressSegment(start_s=started_at, end_s=started_at + duration_s, bits=bits),
        )
    return DownloadRecord(
        medium=medium,
        track_id="V1",
        chunk_index=0,
        size_bits=bits,
        started_at=started_at,
        completed_at=started_at + duration_s,
        segments=tuple(segments),
    )


class TestEwma:
    def test_single_sample_is_exact(self):
        ewma = Ewma(half_life_s=2.0)
        ewma.sample(1.0, 100.0)
        assert ewma.get_estimate() == pytest.approx(100.0)

    def test_converges_to_constant_input(self):
        ewma = Ewma(half_life_s=2.0)
        for _ in range(100):
            ewma.sample(1.0, 640.0)
        assert ewma.get_estimate() == pytest.approx(640.0)

    def test_recent_samples_dominate(self):
        ewma = Ewma(half_life_s=1.0)
        for _ in range(50):
            ewma.sample(1.0, 100.0)
        for _ in range(10):
            ewma.sample(1.0, 1000.0)
        assert ewma.get_estimate() > 900

    def test_zero_weight_rejected(self):
        with pytest.raises(PlayerError):
            Ewma(2.0).sample(0.0, 5.0)

    def test_invalid_half_life(self):
        with pytest.raises(PlayerError):
            Ewma(0.0)

    def test_no_samples_estimate_zero(self):
        assert Ewma(2.0).get_estimate() == 0.0


class TestShakaFilterArithmetic:
    """The exact numbers behind Fig. 4(a)."""

    def test_500kbps_stream_fails_filter(self):
        # Half of a 1 Mbps link: 500 kbps x 0.125 s = 62.5 kbit ≈ 7.6 KB < 16 KB.
        bits_per_interval = 500.0 * 1000.0 * 0.125
        assert bits_per_interval < kilobytes_to_bits(16)

    def test_1mbps_solo_stream_still_fails_filter(self):
        # Even a solo download at the full 1 Mbps: 125 kbit ≈ 15.3 KB < 16 KB.
        bits_per_interval = 1000.0 * 1000.0 * 0.125
        assert bits_per_interval < kilobytes_to_bits(16)

    def test_1050kbps_stream_passes_filter(self):
        bits_per_interval = 1050.0 * 1000.0 * 0.125
        assert bits_per_interval >= kilobytes_to_bits(16)


class TestShakaEstimator:
    def test_default_before_any_data(self):
        assert ShakaEstimator().get_estimate_kbps() == 500.0

    def test_1mbps_download_never_produces_valid_samples(self):
        estimator = ShakaEstimator()
        estimator.observe_download(make_record(kbps=1000.0, duration_s=10.0))
        assert estimator.valid_samples == 0
        assert estimator.discarded_samples > 0
        assert estimator.get_estimate_kbps() == 500.0

    def test_fast_download_produces_valid_samples(self):
        estimator = ShakaEstimator()
        estimator.observe_download(make_record(kbps=2000.0, duration_s=10.0))
        assert estimator.valid_samples > 0
        assert estimator.get_estimate_kbps() == pytest.approx(2000.0, rel=0.01)

    def test_default_until_min_total_bytes(self):
        estimator = ShakaEstimator()
        # One valid 0.125 s interval at 2 Mbps ~= 30.5 KB < 128 KB total.
        estimator.observe_download(make_record(kbps=2000.0, duration_s=0.125))
        assert estimator.valid_samples == 1
        assert not estimator.has_good_estimate
        assert estimator.get_estimate_kbps() == 500.0

    def test_mixed_rates_only_fast_intervals_counted(self):
        """The Fig. 4(b) overestimation: slow intervals are discarded."""
        estimator = ShakaEstimator()
        for _ in range(5):
            estimator.observe_download(make_record(kbps=150.0, duration_s=5.0))
            estimator.observe_download(make_record(kbps=1500.0, duration_s=5.0))
        # True average is 825; the estimator only saw the 1500s.
        assert estimator.get_estimate_kbps() == pytest.approx(1500.0, rel=0.02)

    def test_concurrent_shares_sampled_separately(self):
        """Two 1000-kbps streams on a 2 Mbps link look like 1000 each."""
        estimator = ShakaEstimator()
        estimator.observe_download(
            make_record(kbps=1000.0, duration_s=4.0, medium=MediaType.VIDEO)
        )
        estimator.observe_download(
            make_record(kbps=1000.0, duration_s=4.0, medium=MediaType.AUDIO)
        )
        # 1000 kbps x 0.125 s = 15.26 KB < 16 KB: everything filtered;
        # the estimator never learns the link carries 2 Mbps total.
        assert estimator.valid_samples == 0
        assert estimator.get_estimate_kbps() == 500.0

    def test_min_estimate_of_fast_and_slow(self):
        estimator = ShakaEstimator()
        for _ in range(20):
            estimator.observe_download(make_record(kbps=3000.0, duration_s=2.0))
        estimator.observe_download(make_record(kbps=1200.0, duration_s=2.0))
        # The fast EWMA drops quickly toward 1200; min() is conservative.
        assert estimator.get_estimate_kbps() < 3000.0

    def test_interval_alignment_to_download_start(self):
        estimator = ShakaEstimator()
        record = make_record(kbps=2000.0, duration_s=1.0, started_at=100.0)
        estimator.observe_download(record)
        assert estimator.valid_samples == 8  # 1 s / 0.125 s

    def test_bad_interval_rejected(self):
        with pytest.raises(PlayerError):
            ShakaEstimator(interval_s=0)


class TestSlidingPercentile:
    def test_median_of_equal_weights(self):
        percentile = SlidingPercentile(max_weight=100)
        for value in (100.0, 200.0, 300.0):
            percentile.add_sample(1.0, value)
        assert percentile.get_percentile() == 200.0

    def test_weighting_shifts_median(self):
        percentile = SlidingPercentile(max_weight=100)
        percentile.add_sample(10.0, 100.0)
        percentile.add_sample(1.0, 900.0)
        assert percentile.get_percentile() == 100.0

    def test_window_evicts_oldest(self):
        percentile = SlidingPercentile(max_weight=2.0)
        percentile.add_sample(1.0, 100.0)
        percentile.add_sample(1.0, 100.0)
        percentile.add_sample(1.0, 900.0)
        percentile.add_sample(1.0, 900.0)
        assert percentile.get_percentile() == 900.0

    def test_empty_returns_none(self):
        assert SlidingPercentile().get_percentile() is None

    def test_invalid_params(self):
        with pytest.raises(PlayerError):
            SlidingPercentile(max_weight=0)
        with pytest.raises(PlayerError):
            SlidingPercentile(percentile=1.5)


class TestExoBandwidthMeter:
    def test_initial_estimate(self):
        meter = ExoBandwidthMeter(initial_estimate_kbps=1234.0)
        assert meter.get_estimate_kbps() == 1234.0

    def test_single_transfer(self):
        meter = ExoBandwidthMeter()
        meter.observe_download(make_record(kbps=800.0, duration_s=2.0))
        assert meter.get_estimate_kbps() == pytest.approx(800.0)

    def test_median_across_transfers(self):
        meter = ExoBandwidthMeter()
        for kbps in (700.0, 800.0, 900.0):
            meter.observe_download(make_record(kbps=kbps, duration_s=2.0))
        assert 700.0 <= meter.get_estimate_kbps() <= 900.0

    def test_dead_time_excluded(self):
        # 0.5 s of RTT dead time then 1 s of data at 1000 kbps: the
        # meter counts only the active second.
        segments = (ProgressSegment(start_s=0.5, end_s=1.5, bits=1_000_000.0),)
        record = DownloadRecord(
            medium=MediaType.VIDEO,
            track_id="V1",
            chunk_index=0,
            size_bits=1_000_000.0,
            started_at=0.0,
            completed_at=1.5,
            segments=segments,
        )
        meter = ExoBandwidthMeter()
        meter.observe_download(record)
        assert meter.get_estimate_kbps() == pytest.approx(1000.0)


class TestHarmonicMean:
    def test_single_sample(self):
        estimator = HarmonicMeanEstimator(window=3)
        estimator.add_sample_kbps(600.0)
        assert estimator.get_estimate_kbps() == 600.0

    def test_harmonic_not_arithmetic(self):
        estimator = HarmonicMeanEstimator(window=3)
        for kbps in (100.0, 100.0, 1000.0):
            estimator.add_sample_kbps(kbps)
        estimate = estimator.get_estimate_kbps()
        assert estimate == pytest.approx(3 / (1 / 100 + 1 / 100 + 1 / 1000))
        assert estimate < 400  # robust against the 1000 outlier

    def test_window_slides(self):
        estimator = HarmonicMeanEstimator(window=2)
        for kbps in (100.0, 900.0, 900.0):
            estimator.add_sample_kbps(kbps)
        assert estimator.get_estimate_kbps() == pytest.approx(900.0)

    def test_none_before_samples(self):
        assert HarmonicMeanEstimator().get_estimate_kbps() is None

    def test_initial_estimate_honoured(self):
        estimator = HarmonicMeanEstimator(initial_estimate_kbps=750.0)
        assert estimator.get_estimate_kbps() == 750.0

    def test_invalid_sample(self):
        with pytest.raises(PlayerError):
            HarmonicMeanEstimator().add_sample_kbps(0.0)

    def test_observe_download(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe_download(make_record(kbps=640.0, duration_s=2.0))
        assert estimator.get_estimate_kbps() == pytest.approx(640.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1, max_value=1e5), min_size=1, max_size=20))
    def test_estimate_within_sample_range(self, samples):
        estimator = HarmonicMeanEstimator(window=5)
        for s in samples:
            estimator.add_sample_kbps(s)
        estimate = estimator.get_estimate_kbps()
        window = samples[-5:]
        assert min(window) - 1e-6 <= estimate <= max(window) + 1e-6


class TestSharedThroughputEstimator:
    def test_pools_concurrent_downloads(self):
        """Two concurrent half-rate streams must read as the full link."""
        estimator = SharedThroughputEstimator()
        # Audio and video each at 500 kbps over the same 4 s window.
        estimator.observe_download(
            make_record(kbps=500.0, duration_s=4.0, medium=MediaType.VIDEO)
        )
        estimator.observe_download(
            make_record(kbps=500.0, duration_s=4.0, medium=MediaType.AUDIO)
        )
        assert estimator.get_estimate_kbps() == pytest.approx(1000.0)

    def test_sequential_downloads_average_correctly(self):
        estimator = SharedThroughputEstimator()
        estimator.observe_download(make_record(kbps=800.0, duration_s=2.0, started_at=0.0))
        estimator.observe_download(make_record(kbps=800.0, duration_s=2.0, started_at=2.0))
        assert estimator.get_estimate_kbps() == pytest.approx(800.0)

    def test_idle_gaps_not_counted(self):
        """Capacity, not demand: idle time between downloads is excluded."""
        estimator = SharedThroughputEstimator()
        estimator.observe_download(make_record(kbps=1000.0, duration_s=1.0, started_at=0.0))
        estimator.observe_download(make_record(kbps=1000.0, duration_s=1.0, started_at=9.0))
        assert estimator.get_estimate_kbps() == pytest.approx(1000.0)

    def test_window_expires_old_samples(self):
        estimator = SharedThroughputEstimator(window_s=5.0)
        estimator.observe_download(make_record(kbps=100.0, duration_s=1.0, started_at=0.0))
        estimator.observe_download(make_record(kbps=900.0, duration_s=1.0, started_at=100.0))
        assert estimator.get_estimate_kbps() == pytest.approx(900.0)

    def test_straddling_segment_partially_counted(self):
        estimator = SharedThroughputEstimator(window_s=2.0)
        # 4 s download ending at t=4; window covers [2, 4] only.
        estimator.observe_download(make_record(kbps=600.0, duration_s=4.0, started_at=0.0))
        assert estimator.get_estimate_kbps() == pytest.approx(600.0)

    def test_initial_none(self):
        assert SharedThroughputEstimator().get_estimate_kbps() is None

    def test_initial_value(self):
        estimator = SharedThroughputEstimator(initial_estimate_kbps=640.0)
        assert estimator.get_estimate_kbps() == 640.0

    def test_invalid_window(self):
        with pytest.raises(PlayerError):
            SharedThroughputEstimator(window_s=0)
