"""Live-mode sessions: chunk availability gating at the live edge."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.errors import SimulationError
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant, from_pairs
from repro.players.fixed import FixedTracksPlayer
from repro.sim.session import Session, SessionConfig, simulate

from tests.test_session import flat_content

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestConfig:
    def test_negative_offset_rejected(self):
        with pytest.raises(SimulationError):
            SessionConfig(live_offset_s=-1.0)

    def test_vod_default(self):
        assert SessionConfig().live_offset_s is None


class TestAvailabilityGating:
    def test_no_download_before_publication(self):
        content = flat_content(n_chunks=6)
        config = SessionConfig(live_offset_s=1.0)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0)), config
        )
        assert result.completed
        for record in result.downloads:
            published = record.chunk_index * content.chunk_duration_s + 1.0
            assert record.started_at >= published - 1e-9

    def test_buffers_bounded_by_live_edge(self):
        content = flat_content(n_chunks=10)
        config = SessionConfig(live_offset_s=0.5)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0)), config
        )
        # The client can never hold more content than has been published
        # minus what it has played; with a fast link the buffer hovers
        # near (offset + chunk) at most.
        for sample in result.buffer_timeline:
            assert sample.video_level_s <= content.chunk_duration_s + 0.5 + 1e-6

    def test_vod_unaffected(self):
        content = flat_content(n_chunks=6)
        vod = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0))
        )
        # VOD downloads everything far faster than real time.
        assert vod.downloads[-1].completed_at < content.duration_s / 2

    def test_live_session_tracks_wall_clock(self):
        content = flat_content(n_chunks=8)
        config = SessionConfig(live_offset_s=1.0)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0)), config
        )
        # The last chunk publishes at (n-1)*5+1 s; the session must end
        # after that plus one chunk of playback.
        assert result.ended_at_s >= (content.n_chunks - 1) * 5 + 1.0

    def test_latency_is_startup_plus_stalls(self):
        content = flat_content(n_chunks=8)
        config = SessionConfig(live_offset_s=1.0)
        result = simulate(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0)), config
        )
        latency = result.ended_at_s - content.duration_s
        assert latency == pytest.approx(
            result.startup_delay_s + result.total_rebuffer_s, abs=1e-6
        )


class TestLiveWithAdaptivePlayers:
    def test_recommended_player_live(self, content, hsub_combos):
        config = SessionConfig(live_offset_s=2.0)
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(constant(1500.0)), config)
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)

    def test_shallow_buffers_keep_quality_conservative(self, content, hsub_combos):
        """At the live edge the joint buffer can never reach the
        up-switch threshold plus headroom that deep-VOD buffering
        allows, so live selections sit at or below the VOD ones."""
        vod = simulate(
            content, RecommendedPlayer(hsub_combos), shared(constant(1500.0))
        )
        live = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(constant(1500.0)),
            SessionConfig(live_offset_s=2.0),
        )
        assert live.time_weighted_bitrate_kbps(V) <= (
            vod.time_weighted_bitrate_kbps(V) + 1e-6
        )

    def test_bandwidth_dip_at_live_edge_stalls(self, content, hsub_combos):
        """Live cannot ride out dips on a deep buffer: a dip that VOD
        absorbs silently stalls the live session."""
        trace = from_pairs([(60, 1500.0), (20, 200.0), (600, 1500.0)], loop=False)
        vod = simulate(content, RecommendedPlayer(hsub_combos), shared(trace))
        live = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(from_pairs([(60, 1500.0), (20, 200.0), (600, 1500.0)], loop=False)),
            SessionConfig(live_offset_s=2.0),
        )
        assert vod.total_rebuffer_s == 0.0
        assert live.total_rebuffer_s > 0.0


class TestContextAccessors:
    def test_live_edge_index_advances(self):
        content = flat_content(n_chunks=6)
        session = Session(
            content,
            FixedTracksPlayer("V1", "A1"),
            shared(constant(10_000.0)),
            SessionConfig(live_offset_s=1.0),
        )
        assert session.ctx.is_live
        assert session.ctx.live_edge_index() == -1  # nothing published at t=0
        session.now = 1.0
        assert session.ctx.live_edge_index() == 0
        session.now = 11.0
        assert session.ctx.live_edge_index() == 2

    def test_vod_edge_is_last_chunk(self):
        content = flat_content(n_chunks=6)
        session = Session(
            content, FixedTracksPlayer("V1", "A1"), shared(constant(10_000.0))
        )
        assert not session.ctx.is_live
        assert session.ctx.live_edge_index() == 5

    def test_availability_times(self):
        content = flat_content(n_chunks=4)
        session = Session(
            content,
            FixedTracksPlayer("V1", "A1"),
            shared(constant(1000.0)),
            SessionConfig(live_offset_s=2.0),
        )
        assert session.chunk_available_at(0) == 2.0
        assert session.chunk_available_at(3) == 17.0
