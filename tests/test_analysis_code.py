"""Whole-program code rules: UNIT-* / POOL-* families, the unified
suppression grammar, and the mutation-fixture corpus.

Every new rule is proven twice: a ``*_bad.py`` fixture under
``tests/fixtures/lint/`` seeds exactly the bug the rule exists for (and
must fire *only* that rule), and its ``*_clean.py`` twin encodes the
idiomatic repair (and must produce zero findings under the full code
rule set).
"""

from pathlib import Path

import pytest

from repro.analysis import (
    REGISTRY,
    AnalyzerConfig,
    Severity,
    analyze_files,
    analyze_text,
    fix_files,
)
from repro.analysis.findings import SARIF_LEVELS

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def rule_id_of(fixture: Path) -> str:
    """unit_mix_arith_bad.py -> UNIT-MIX-ARITH."""
    stem = fixture.stem
    for suffix in ("_bad", "_clean"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem.upper().replace("_", "-")


def surfaces_dir_for(path: Path):
    """Sidecar snapshot dir for snapshot-dependent SURF fixtures.

    ``surf_key_churn_bad.py`` compares against
    ``fixtures/lint/surfaces/surf_key_churn/``; fixtures without a
    sidecar lint with no snapshots configured (the SURF comparisons
    then stay silent, which keeps unrelated fixtures inert).
    """
    stem = path.stem
    for suffix in ("_bad", "_clean"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    sidecar = FIXTURES / "surfaces" / stem
    return str(sidecar) if sidecar.is_dir() else None


def lint(path: Path):
    config = AnalyzerConfig(surfaces_dir=surfaces_dir_for(path))
    return analyze_text(path.name, path.read_text(), config)


BAD_FIXTURES = sorted(FIXTURES.glob("*_bad.py"))
CLEAN_FIXTURES = sorted(FIXTURES.glob("*_clean.py"))


class TestFixtureCorpus:
    def test_corpus_is_paired(self):
        assert len(BAD_FIXTURES) == len(CLEAN_FIXTURES) == 29
        assert [rule_id_of(p) for p in BAD_FIXTURES] == [
            rule_id_of(p) for p in CLEAN_FIXTURES
        ]

    def test_every_new_rule_has_a_fixture_pair(self):
        covered = {rule_id_of(p) for p in BAD_FIXTURES}
        new_rules = {
            r.rule_id
            for r in REGISTRY
            if r.rule_id.startswith(
                ("UNIT-", "POOL-", "LINT-", "SHARE-", "HOT-", "SURF-", "POLICY-")
            )
        }
        assert covered == new_rules

    @pytest.mark.parametrize("fixture", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_bad_fixture_fires_exactly_its_rule(self, fixture):
        findings = lint(fixture)
        assert {f.rule for f in findings} == {rule_id_of(fixture)}

    @pytest.mark.parametrize("fixture", CLEAN_FIXTURES, ids=lambda p: p.stem)
    def test_clean_fixture_is_silent(self, fixture):
        assert lint(fixture) == []


class TestSuppressionGrammar:
    BUG = "import random\nx = random.random(){comment}\n"

    def test_named_allow_suppresses(self):
        text = self.BUG.format(comment="  # lint: allow[DET-UNSEEDED-RANDOM]")
        assert analyze_text("m.py", text) == []

    def test_star_allow_suppresses_everything(self):
        text = (
            "import random\n"
            "delay_ms = 4.0\n"
            "x = random.random() + delay_ms  # lint: allow[*]\n"
        )
        assert analyze_text("m.py", text) == []

    def test_multiple_ids_in_one_comment(self):
        # Both rules genuinely fire on the line, so both tokens are
        # used and neither draws LINT-UNUSED-SUPPRESS.
        text = (
            "import random\n"
            "delay_ms = 4.0\n"
            "dur_s = 2.0\n"
            "x = random.random() if dur_s > delay_ms else 0.0"
            "  # lint: allow[DET-UNSEEDED-RANDOM, UNIT-MIX-COMPARE]\n"
        )
        assert analyze_text("m.py", text) == []

    def test_wrong_id_does_not_suppress(self):
        # The finding survives, and the mismatched token is itself
        # reported stale.
        text = self.BUG.format(comment="  # lint: allow[DET-WALLCLOCK]")
        rules = [f.rule for f in analyze_text("m.py", text)]
        assert "DET-UNSEEDED-RANDOM" in rules
        assert "LINT-UNUSED-SUPPRESS" in rules

    def test_legacy_det_allow_is_inert(self):
        # The PR-5 deprecation window closed: the old grammar no longer
        # suppresses anything, it only draws the migration note.
        text = self.BUG.format(comment="  # det: allow")
        rules = [f.rule for f in analyze_text("m.py", text)]
        assert "DET-UNSEEDED-RANDOM" in rules
        assert "LINT-DEPRECATED-SUPPRESS" in rules

    def test_legacy_det_allow_does_not_cover_unit_rules(self):
        text = (
            "buffer_s = 1.0\n"
            "delay_ms = 4.0\n"
            "x = buffer_s + delay_ms  # det: allow\n"
        )
        rules = {f.rule for f in analyze_text("m.py", text)}
        assert "UNIT-MIX-ARITH" in rules
        assert "LINT-DEPRECATED-SUPPRESS" in rules

    def test_docstring_mention_neither_fires_nor_suppresses(self):
        text = (
            '"""Docs may say # det: allow or # lint: allow[*] freely."""\n'
            "import random\n"
            "x = random.random()\n"
        )
        rules = [f.rule for f in analyze_text("m.py", text)]
        assert rules == ["DET-UNSEEDED-RANDOM"]

    def test_deprecation_note_severity_maps_to_sarif_note(self):
        text = self.BUG.format(comment="  # det: allow")
        (finding,) = [
            f
            for f in analyze_text("m.py", text)
            if f.rule == "LINT-DEPRECATED-SUPPRESS"
        ]
        assert finding.severity is Severity.INFO
        assert SARIF_LEVELS[finding.severity] == "note"

    def test_deprecation_note_itself_can_be_waived(self):
        # The DET rule needs its own token now that the legacy
        # grammar is inert.
        text = self.BUG.format(
            comment="  # det: allow  "
            "# lint: allow[LINT-DEPRECATED-SUPPRESS, DET-UNSEEDED-RANDOM]"
        )
        assert analyze_text("m.py", text) == []


class TestDimensionFlow:
    def test_propagates_through_unsuffixed_locals(self):
        text = (
            "from repro.units import chunk_bits\n"
            "def f(rate_kbps, dur_s, delay_s):\n"
            "    budget = chunk_bits(rate_kbps, dur_s)\n"
            "    return budget + delay_s\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-MIX-ARITH"
        ]

    def test_converter_alias_import_is_tracked(self):
        text = (
            "from repro.units import kbps_to_bps as to_bps\n"
            "def f(rate_kbps, cap_kbps):\n"
            "    rate = to_bps(rate_kbps)\n"
            "    return rate > cap_kbps\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-MIX-COMPARE"
        ]

    def test_repurposed_local_is_demoted_to_ambiguous(self):
        text = (
            "from repro.units import kbps_to_bps, bytes_to_bits\n"
            "def f(rate_kbps, size_bytes, cap_kbps):\n"
            "    x = kbps_to_bps(rate_kbps)\n"
            "    x = bytes_to_bits(size_bytes)\n"
            "    return x > cap_kbps\n"
        )
        assert analyze_text("m.py", text) == []

    def test_mult_and_div_yield_unknown(self):
        text = (
            "def f(duration_ms, buffer_s):\n"
            "    return buffer_s + duration_ms / 1000.0\n"
        )
        assert analyze_text("m.py", text) == []

    def test_aggregating_builtin_preserves_agreeing_dim(self):
        text = (
            "def f(deadline_s, budget_s, horizon_ms):\n"
            "    return min(deadline_s, budget_s) + horizon_ms\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-MIX-ARITH"
        ]

    def test_keyword_argument_checked_by_name(self):
        text = (
            "def send(timeout_s=1.0):\n"
            "    return timeout_s\n"
            "def f(grace_ms):\n"
            "    return send(timeout_s=grace_ms)\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-ARG-MISMATCH"
        ]

    def test_same_module_positional_params_checked(self):
        text = (
            "def wait(delay_s):\n"
            "    return delay_s\n"
            "def f(poll_ms):\n"
            "    return wait(poll_ms)\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-ARG-MISMATCH"
        ]

    def test_case_insensitive_constants(self):
        text = (
            "_POLL_TICK_S = 0.1\n"
            "def f(interval_ms):\n"
            "    return interval_ms > _POLL_TICK_S\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-MIX-COMPARE"
        ]

    def test_longest_suffix_wins(self):
        text = (
            "def f(bandwidth_kbps, ladder_kbps):\n"
            "    return bandwidth_kbps + ladder_kbps\n"
        )
        assert analyze_text("m.py", text) == []

    def test_subscript_carries_sequence_dim(self):
        text = (
            "def f(chunk_sizes_bits, budget_bytes):\n"
            "    return chunk_sizes_bits[0] > budget_bytes\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "UNIT-MIX-COMPARE"
        ]


class TestPoolRules:
    def test_non_spec_dataclass_callable_field_not_flagged(self):
        # The analyzer's own Rule dataclass holds a check function; only
        # *Spec/*Job classes promise picklability-by-construction.
        text = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "@dataclass(frozen=True)\n"
            "class Rule:\n"
            "    check: Callable\n"
        )
        assert analyze_text("m.py", text) == []

    def test_spec_constructor_capturing_lambda_flagged(self):
        text = (
            "def build(path):\n"
            "    return TraceSpec(loader=lambda: path)\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "POOL-LAMBDA-SUBMIT"
        ]

    def test_spec_constructor_capturing_open_handle_flagged(self):
        text = (
            "def build(path):\n"
            "    return TraceSpec(handle=open(path))\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "POOL-LAMBDA-SUBMIT"
        ]

    def test_builtin_map_with_lambda_not_flagged(self):
        text = "def f(xs):\n    return list(map(lambda x: x + 1, xs))\n"
        assert analyze_text("m.py", text) == []

    def test_reading_module_global_not_flagged(self):
        text = (
            "_REGISTRY = {}\n"
            "def resolve(name):\n"
            "    return _REGISTRY[name]\n"
        )
        assert analyze_text("m.py", text) == []

    def test_mutator_method_on_module_global_flagged(self):
        text = (
            "_SEEN = set()\n"
            "def mark(key):\n"
            "    _SEEN.add(key)\n"
        )
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "POOL-GLOBAL-MUTABLE"
        ]

    def test_os_fork_flagged(self):
        text = "import os\ndef f():\n    return os.fork()\n"
        assert [f.rule for f in analyze_text("m.py", text)] == [
            "POOL-FORK-UNSAFE"
        ]

    def test_module_level_executor_flagged_but_not_in_function(self):
        flagged = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "POOL = ProcessPoolExecutor()\n"
        )
        assert [f.rule for f in analyze_text("m.py", flagged)] == [
            "POOL-FORK-UNSAFE"
        ]
        fine = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run():\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool\n"
        )
        assert analyze_text("m.py", fine) == []


class TestEngineIntegration:
    def test_config_select_restricts_families(self):
        bad = (FIXTURES / "unit_mix_arith_bad.py").read_text()
        config = AnalyzerConfig(selected=frozenset({"POOL-FORK-UNSAFE"}))
        assert analyze_files({"m.py": bad}, config) == []

    def test_only_unused_suppress_is_fixable_among_python_rules(self):
        # The autofix layer repairs manifest rules plus exactly one
        # python-side rule: LINT-UNUSED-SUPPRESS (stale-token removal).
        # Every other code-rule fixture must pass through untouched.
        files = {p.name: p.read_text() for p in BAD_FIXTURES}
        result = fix_files(files)
        changed = {
            name for name in files if result.files[name] != files[name]
        }
        assert changed == {"lint_unused_suppress_bad.py"}
        assert result.fixed
        assert {f.rule for f in result.fixed} == {"LINT-UNUSED-SUPPRESS"}
        # The fixed file matches its clean twin byte for byte.
        twin = (FIXTURES / "lint_unused_suppress_clean.py").read_text()
        fixed_body = result.files["lint_unused_suppress_bad.py"]
        assert fixed_body.splitlines()[2:] == twin.splitlines()[2:]

    def test_src_repro_lints_clean_under_full_code_rule_set(self):
        # The dogfooding pin: the whole tree stays clean under every
        # UNIT/POOL/DET rule (suppressions carry written justifications
        # at the call sites).
        files = {
            str(p.relative_to(SRC_REPRO.parent)): p.read_text()
            for p in sorted(SRC_REPRO.rglob("*.py"))
        }
        assert len(files) > 50
        findings = analyze_files(files)
        assert findings == [], [str(f) for f in findings]


class TestWaiverAudit:
    """Every ``# lint: allow[...]`` waiver in the src tree must be
    load-bearing: stripping the token re-fires exactly the waived rule
    on that line. A waiver that proves nothing is deleted, not kept —
    this pins the tree-wide audit so stale waivers cannot accrete."""

    @staticmethod
    def _src_waivers():
        """[(path, line_no, [tokens])] via the engine's own tokenizer
        (docstrings that merely *mention* the grammar don't count)."""
        from repro.analysis.engine import prepare

        files = {
            str(p.relative_to(SRC_REPRO.parent)): p.read_text()
            for p in sorted(SRC_REPRO.rglob("*.py"))
        }
        prepared, _ctx = prepare(files, AnalyzerConfig())
        waivers = []
        for artifact in prepared:
            if artifact.python is None:
                continue
            for line_no, tokens in sorted(
                artifact.python.allow_tokens().items()
            ):
                waivers.append((artifact.name, line_no, tokens))
        return waivers

    def test_waiver_census_is_pinned(self):
        """Adding a waiver is a reviewed decision: update this census
        (and the justification comment at the site) deliberately."""
        census = {}
        for name, _line, tokens in self._src_waivers():
            for token in tokens:
                census[(name, token)] = census.get((name, token), 0) + 1
        assert census == {
            ("repro/experiments/base.py", "POOL-GLOBAL-MUTABLE"): 1,
            ("repro/runner/engine.py", "POOL-GLOBAL-MUTABLE"): 2,
            ("repro/runner/jobs.py", "POOL-GLOBAL-MUTABLE"): 1,
            ("repro/sim/decisions.py", "POOL-GLOBAL-MUTABLE"): 1,
            ("repro/sim/session.py", "HOT-ALLOC-IN-LOOP"): 9,
        }

    def test_every_waiver_is_load_bearing(self):
        import re

        strip = re.compile(r"\s*# lint: allow\[[^\]]*\].*$")
        by_file = {}
        for name, line_no, tokens in self._src_waivers():
            by_file.setdefault(name, []).append((line_no, tokens))
        assert by_file  # the census test pins the exact population
        for name, sites in by_file.items():
            path = SRC_REPRO.parent / name
            lines = path.read_text().splitlines(keepends=True)
            for line_no, tokens in sites:
                stripped = strip.sub("", lines[line_no - 1].rstrip("\n"))
                mutated = "".join(
                    stripped + "\n" if i == line_no - 1 else original
                    for i, original in enumerate(lines)
                )
                fired = {
                    f.rule
                    for f in analyze_text(name, mutated)
                    if f.span.line == line_no
                }
                for token in tokens:
                    assert token in fired, (name, line_no, token)
