"""Population QoE statistics."""

import pytest

from repro.errors import ReproError
from repro.qoe.aggregate import QoEAggregate, percentile
from repro.qoe.metrics import QoEReport


def make_report(score=10.0, stalls=0, rebuffer=0.0, switches=0, undesirable=0, chunks=10):
    return QoEReport(
        quality=score,
        video_quality=score,
        audio_quality=0.0,
        rebuffer_s=rebuffer,
        n_stalls=stalls,
        startup_delay_s=1.0,
        switch_cost=0.0,
        video_switches=switches,
        audio_switches=0,
        score=score,
        chunks_scored=chunks,
        undesirable_chunks=undesirable,
    )


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 0.5) == 5.0

    def test_median_odd(self):
        assert percentile([1.0, 2.0, 9.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)

    def test_fraction_validated(self):
        with pytest.raises(ReproError):
            percentile([1.0], 1.5)


class TestQoEAggregate:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            QoEAggregate().mean_score()

    def test_mean_median(self):
        aggregate = QoEAggregate()
        for score in (10.0, 20.0, 90.0):
            aggregate.add(make_report(score=score))
        assert aggregate.mean_score() == pytest.approx(40.0)
        assert aggregate.median_score() == 20.0

    def test_p10_is_tail(self):
        aggregate = QoEAggregate()
        for score in range(11):
            aggregate.add(make_report(score=float(score)))
        assert aggregate.p10_score() == pytest.approx(1.0)

    def test_stall_ratio(self):
        aggregate = QoEAggregate()
        aggregate.add(make_report(stalls=0))
        aggregate.add(make_report(stalls=2))
        aggregate.add(make_report(stalls=0))
        aggregate.add(make_report(stalls=1))
        assert aggregate.stall_ratio() == 0.5

    def test_mean_rebuffer_and_switches(self):
        aggregate = QoEAggregate()
        aggregate.add(make_report(rebuffer=4.0, switches=2))
        aggregate.add(make_report(rebuffer=0.0, switches=6))
        assert aggregate.mean_rebuffer_s() == 2.0
        assert aggregate.mean_switches() == 4.0

    def test_undesirable_ratio(self):
        aggregate = QoEAggregate()
        aggregate.add(make_report(undesirable=5, chunks=10))
        aggregate.add(make_report(undesirable=0, chunks=10))
        assert aggregate.undesirable_ratio() == 0.25

    def test_summary_keys(self):
        aggregate = QoEAggregate()
        aggregate.add(make_report())
        summary = aggregate.summary()
        assert summary["sessions"] == 1
        for key in ("mean_qoe", "p10_qoe", "stall_ratio", "undesirable_ratio"):
            assert key in summary

    def test_len(self):
        aggregate = QoEAggregate()
        assert len(aggregate) == 0
        aggregate.add(make_report())
        assert len(aggregate) == 1
