"""Regenerate the pinned kernel-equivalence event logs.

The logs in this directory were recorded at the pre-kernel-overhaul
HEAD (PR 6 engine) and are the equivalence oracle for every later
kernel rewrite: a new engine must replay them byte-identically
(``repro-abr replay --verify``) and a fresh recording of the same job
must ``diff-events`` clean against them modulo the documented
buffer-sample dedup canonicalization (see ``docs/event_log.md``).

Run from the repo root to re-record against the *current* engine::

    PYTHONPATH=src python tests/fixtures/eventlogs/regenerate.py

Only regenerate deliberately — e.g. after an intentional,
schema-noted change in the recorded stream — and say so in the PR:
regenerating silently converts the oracle into a mirror.
"""

from __future__ import annotations

import os

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))


def fixture_jobs():
    """The pinned player x trace x failure grid, in recording order."""
    from repro.net.resilience import RetryPolicy
    from repro.runner.jobs import FailureSpec, PlayerSpec, SimulationJob, TraceSpec

    square = TraceSpec.pairs([(12.0, 600.0), (12.0, 2600.0)])
    traces = [
        TraceSpec.constant(900.0),
        square,
        TraceSpec.random_walk(1500.0, seed=3),
    ]
    players = ["shaka", "dashjs", "exoplayer-dash", "exoplayer-hls", "recommended"]
    jobs = [
        SimulationJob(player=PlayerSpec(name), trace=trace, rtt_s=0.05)
        for name in players
        for trace in traces
    ]
    # Failure-path cells: taxonomy failures with retry/backoff/resume.
    for name in ("shaka", "recommended"):
        jobs.append(
            SimulationJob(
                player=PlayerSpec(name),
                trace=square,
                rtt_s=0.05,
                failure=FailureSpec(
                    probability=0.25, seed=5, taxonomy=True
                ),
                retry_policy=RetryPolicy(),
            )
        )
    return jobs


def record_all(out_dir: str = FIXTURE_DIR):
    from repro.replay.recorder import EventRecorder, record_path
    from repro.sim.session import Session

    written = []
    for job in fixture_jobs():
        path = record_path(out_dir, job.key())
        recorder = EventRecorder(
            path,
            extra_meta={
                "job": job.spec_dict(),
                "key": job.key(),
                "label": job.label(),
            },
        )
        content, player, network, config = job.build(observer=recorder)
        Session(content, player, network, config).run()
        written.append((job.label(), path))
    return written


if __name__ == "__main__":
    import sys

    # Optional argument: record into a different directory (e.g. CI
    # re-records the oracle grid there and diff-events's it against
    # the pinned logs) instead of overwriting the fixtures in place.
    out_dir = sys.argv[1] if len(sys.argv) > 1 else FIXTURE_DIR
    os.makedirs(out_dir, exist_ok=True)
    for label, path in record_all(out_dir):
        print(f"{label}: {os.path.basename(path)} ({os.path.getsize(path)} bytes)")
