"""Seeded mutation: a job-spec dataclass captures a callback field."""

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ProbeSpec:
    name: str
    on_done: Callable[[float], None]
