"""Seeded mutation: the lint subcommand drops the deprecated
--format dash|hls aliases the manifest-shim retirement promised would
keep parsing for one more release."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="fixture-cli")
    commands = parser.add_subparsers(dest="command")
    lint_parser = commands.add_parser("lint")
    lint_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
    )
    return parser
