"""Seeded mutation: writing to a value returned by an interning cache.
Every call site holds the *same* object, so the write edits all of
them at once."""

from dataclasses import dataclass

_CACHE = {}


@dataclass(frozen=True)
class Download:
    track_id: str
    urgent: bool = False


def download_for(track_id):
    decision = _CACHE.get(track_id)
    if decision is None:
        decision = _CACHE[track_id] = Download(track_id=track_id)  # lint: allow[POOL-GLOBAL-MUTABLE] per-process intern pool
    return decision


def escalate(track_id):
    decision = download_for(track_id)
    decision.urgent = True
    return decision
