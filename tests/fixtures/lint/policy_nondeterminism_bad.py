"""Seeded mutation: the player consults the wall clock *through a
helper* — the direct-call DET rules cannot see it from choose_next,
but the transitive closure over the program index can."""

import time

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


def _startup_jitter():
    # Deliberately impure helper; the waiver keeps the direct-call DET
    # rule quiet so the fixture isolates the transitive conviction.
    return time.time() % 1.0  # lint: allow[DET-WALLCLOCK]


class JitterPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        if _startup_jitter() > 0.5:
            return download_for("V2")
        return download_for("V1")

    def on_failure(self, medium, failure, ctx):
        return None
