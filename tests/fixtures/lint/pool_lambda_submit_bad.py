"""Seeded mutation: a lambda submitted to a process pool cannot pickle."""

from concurrent.futures import ProcessPoolExecutor


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(lambda job=job: job.run()) for job in jobs]
