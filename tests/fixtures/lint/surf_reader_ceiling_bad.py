"""Seeded mutation: schema_for_meta stamps v2 events but the reader
ceiling EVENT_SCHEMA_VERSION stayed at 1 — readers refuse logs this
writer just produced."""

import enum

EVENT_SCHEMA_BASE_VERSION = 1
EVENT_SCHEMA_VERSION = 1

FIXTURE_META_FIELDS = ("edge_id",)


class EventKind(str, enum.Enum):
    SESSION_META = "session_meta"
    CHUNK = "chunk"


def schema_for_meta(meta):
    for field in FIXTURE_META_FIELDS:
        if field in meta:
            return 2
    return EVENT_SCHEMA_BASE_VERSION
