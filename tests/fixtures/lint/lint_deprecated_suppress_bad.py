"""Seeded mutation: a legacy det-style suppression comment. It still
suppresses the DET finding for one release, but draws a note."""

import random


def jitter() -> float:
    return random.random()  # det: allow
