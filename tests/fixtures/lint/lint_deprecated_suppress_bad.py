"""Seeded mutation: a legacy det-style suppression comment. The
grammar is inert — it suppresses nothing — so the note is the only
trace it leaves."""

CHUNK_DURATION_S = 2.0  # det: allow
