"""Seeded mutation: forcing the fork start method at import time."""

import multiprocessing

multiprocessing.set_start_method("fork")
