"""Clean twin: state changes only inside declared lifecycle hooks;
the public introspection surface stays read-only."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class CountingPlayer(BasePlayer):
    def __init__(self):
        self._polls = 0

    def choose_next(self, medium, ctx):
        return download_for("V1")

    def on_chunk_complete(self, record, ctx):
        self._polls += 1

    def rung_estimate(self, ctx):
        return self._polls

    def on_download_failed(self, record, ctx):
        return None
