"""Clean twin: overridden hooks keep BasePlayer's exact parameter
names."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class RenamedArgsPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        return download_for("V1")

    def on_failure(self, medium, failure, ctx):
        return None
