"""Clean twin: the container is hoisted out of the loop (or avoided
entirely — scalars and tuples are fine)."""


# hot
def drain(samples):
    total = 0.0
    for sample in samples:
        total += sample
    return total
