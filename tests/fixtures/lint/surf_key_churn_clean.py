"""Clean twin: the keyed spec dataclass matches the committed
spec-keys surface snapshot exactly (fields, spec_dict keys, governing
schema version)."""

import hashlib
import json
from dataclasses import dataclass

FIXTURE_SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FixtureJob:
    label: str
    seed: int

    def spec_dict(self):
        return {
            "schema": FIXTURE_SPEC_SCHEMA_VERSION,
            "label": self.label,
            "seed": self.seed,
        }

    def key(self):
        payload = json.dumps(self.spec_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
