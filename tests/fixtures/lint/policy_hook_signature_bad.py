"""Seeded mutation: an overridden hook renames the base parameters —
the kernel and tests call hooks by keyword, and the suffixed names
carry the unit conventions the UNIT rules check."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class RenamedArgsPlayer(BasePlayer):
    def choose_next(self, media, context):
        return download_for("V1")

    def on_failure(self, medium, failure, ctx):
        return None
