"""Clean twin: results accumulate in a local and are returned."""


def collect_results(pairs):
    results = {}
    for key, row in pairs:
        results[key] = row
    return results
