"""Clean twin: the phase helper reads event-loop state threaded
through the session context, so replay sees the same values as the
live run."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


def _startup_phase(ctx):
    return ctx.tick % 2


class JitterPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        if _startup_phase(ctx) == 0:
            return download_for("V2")
        return download_for("V1")

    def on_failure(self, medium, failure, ctx):
        return None
