"""Seeded mutation: a '# shared' class memoizes per-consumer lookup
state on itself, so two sessions walking one instance corrupt each
other's fast path (the PR-7 BandwidthTrace cursor hazard)."""


# shared
class Profile:
    def __init__(self, starts):
        self.starts = tuple(starts)
        self._cursor = 0

    def locate(self, t):
        self._cursor = 1
        return self.starts[self._cursor] <= t
