"""Clean twin: the scale factor makes the conversion explicit (a product
has no inferred dimension, so manual conversions are never flagged)."""


def startup_delay_ms(startup_delay_s: float) -> float:
    return startup_delay_s * 1000.0
