"""Seeded mutation: a mutable default argument. The list is created
once at definition time and shared by every call that omits the
argument — one session's history leaks into the next."""


def record_stall(event, history=[]):
    history.append(event)
    return history
