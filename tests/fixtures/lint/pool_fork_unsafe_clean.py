"""Clean twin: an explicit context, created inside a function."""

import multiprocessing


def make_context():
    return multiprocessing.get_context("spawn")
