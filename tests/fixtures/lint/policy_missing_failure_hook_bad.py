"""Seeded mutation: a concrete player defines choose_next but no
failure hook and no explicit acknowledgement — BasePlayer's default
silently swallows download failures."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class SilentPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        return download_for("V1")
