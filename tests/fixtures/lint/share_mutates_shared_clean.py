"""Clean twin: the shared class is read-only after __init__; each
consumer holds its own cursor view over the immutable data."""


# shared
class Profile:
    def __init__(self, starts):
        self.starts = tuple(starts)

    def cursor(self):
        return ProfileCursor(self)


class ProfileCursor:
    __slots__ = ("_profile", "_cursor")

    def __init__(self, profile):
        self._profile = profile
        self._cursor = 0

    def locate(self, t):
        self._cursor = 1
        return self._profile.starts[self._cursor] <= t
