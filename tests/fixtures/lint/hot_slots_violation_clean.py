"""Clean twin: every written attribute is declared in __slots__."""


class Lane:
    __slots__ = ("medium", "completed", "last_chunk")

    def __init__(self, medium):
        self.medium = medium
        self.completed = 0
        self.last_chunk = None

    def finish(self, chunk):
        self.completed += 1
        self.last_chunk = chunk
