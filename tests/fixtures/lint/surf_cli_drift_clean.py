"""Clean twin: the deprecated --format dash|hls aliases stay in the
choices list for the promised deprecation window."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="fixture-cli")
    commands = parser.add_subparsers(dest="command")
    lint_parser = commands.add_parser("lint")
    lint_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif", "dash", "hls"],
    )
    return parser
