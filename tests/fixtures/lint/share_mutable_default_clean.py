"""Clean twin: default to None and allocate per call."""


def record_stall(event, history=None):
    if history is None:
        history = []
    history.append(event)
    return history
