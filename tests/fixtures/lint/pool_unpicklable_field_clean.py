"""Clean twin: the spec stores a registry name resolved inside the worker."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeSpec:
    name: str
    on_done_hook: str
