"""Seeded mutation: a suppression that suppresses nothing. Stale
waivers hide real findings the day the code changes underneath them."""

TARGET_BUFFER_S = 12.0  # lint: allow[UNIT-ASSIGN-MISMATCH]
