"""Seeded mutation: a public non-hook method mutates player state —
observers call these between events during replay, so a mutating
getter makes outcomes depend on observer presence."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class CountingPlayer(BasePlayer):
    def __init__(self):
        self._polls = 0

    def choose_next(self, medium, ctx):
        return download_for("V1")

    def rung_estimate(self, ctx):
        self._polls += 1
        return self._polls

    def on_download_failed(self, record, ctx):
        return None
