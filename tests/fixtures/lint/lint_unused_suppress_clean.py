"""Clean twin: no waiver where nothing fires (`repro-abr lint --fix`
removes stale tokens automatically)."""

TARGET_BUFFER_S = 12.0
