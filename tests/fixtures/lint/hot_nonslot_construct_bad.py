"""Seeded mutation: a hot function constructs a class without
__slots__, paying a per-instance __dict__ on the per-chunk path."""


class Sample:
    def __init__(self, t, kbps):
        self.t = t
        self.kbps = kbps


# hot
def observe(t, kbps):
    return Sample(t, kbps)
