"""Clean twin: a module-level function pickles by qualified name."""

from concurrent.futures import ProcessPoolExecutor


def _run_one(job):
    return job.run()


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(_run_one, job) for job in jobs]
