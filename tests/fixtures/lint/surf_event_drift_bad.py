"""Seeded mutation: an event kind is removed from the registry while
the committed surface (and recorded logs on disk) still carry it — a
breaking schema change with no version bump."""

import enum

EVENT_SCHEMA_BASE_VERSION = 1
EVENT_SCHEMA_VERSION = 2

FIXTURE_META_FIELDS = ("edge_id",)


class EventKind(str, enum.Enum):
    SESSION_META = "session_meta"
    VERDICT = "verdict"


def schema_for_meta(meta):
    for field in FIXTURE_META_FIELDS:
        if field in meta:
            return EVENT_SCHEMA_VERSION
    return EVENT_SCHEMA_BASE_VERSION
