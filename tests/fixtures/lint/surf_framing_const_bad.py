"""Seeded mutation: an on-disk framing magic is re-valued — bytes
already written with the old magic do not migrate, so every existing
log becomes unreadable."""

import struct

SEGMENT_MAGIC = b"XSEG"
_SEGMENT_HEADER = struct.Struct(">QI")
