"""Seeded mutation: a hot loop allocates a fresh container every
iteration — exactly the churn the kernel overhaul removed from the
per-chunk path."""


# hot
def drain(samples):
    total = 0.0
    for sample in samples:
        window = [sample]
        total += sum(window)
    return total
