"""Clean twin: the reader ceiling was raised in the same change that
added the v2 writer tier, so every stamped version is readable."""

import enum

EVENT_SCHEMA_BASE_VERSION = 1
EVENT_SCHEMA_VERSION = 2

FIXTURE_META_FIELDS = ("edge_id",)


class EventKind(str, enum.Enum):
    SESSION_META = "session_meta"
    CHUNK = "chunk"


def schema_for_meta(meta):
    for field in FIXTURE_META_FIELDS:
        if field in meta:
            return EVENT_SCHEMA_VERSION
    return EVENT_SCHEMA_BASE_VERSION
