"""Clean twin: derive a new value instead of editing the interned one
(dataclasses.replace leaves the shared instance untouched)."""

from dataclasses import dataclass, replace

_CACHE = {}


@dataclass(frozen=True)
class Download:
    track_id: str
    urgent: bool = False


def download_for(track_id):
    decision = _CACHE.get(track_id)
    if decision is None:
        decision = _CACHE[track_id] = Download(track_id=track_id)  # lint: allow[POOL-GLOBAL-MUTABLE] per-process intern pool
    return decision


def escalate(track_id):
    return replace(download_for(track_id), urgent=True)
