"""Seeded mutation: a write outside a fully slotted hierarchy's
__slots__ union — AttributeError the first time the method runs."""


class Lane:
    __slots__ = ("medium", "completed")

    def __init__(self, medium):
        self.medium = medium
        self.completed = 0

    def finish(self, chunk):
        self.completed += 1
        self.last_chunk = chunk
