"""Seeded mutation: results written into a module-level dict from a
function — inside a worker, the write never reaches the parent."""

_RESULTS = {}


def record_result(key, row):
    _RESULTS[key] = row
