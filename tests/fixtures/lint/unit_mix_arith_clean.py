"""Clean twin: both operands are seconds."""


def rebuffer_budget(buffer_s: float, chunk_duration_s: float) -> float:
    return buffer_s + chunk_duration_s
