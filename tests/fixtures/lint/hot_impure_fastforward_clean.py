"""Clean twin: the pure region only advances closed-form state; the
policy hook runs after the loop, in the stepped path."""


def fast_forward(policy, boundaries, horizon):
    t = 0.0
    # hot: pure
    for boundary in boundaries:
        if boundary > horizon:
            break
        t = boundary
    policy.on_chunk_complete(t)
    return t
