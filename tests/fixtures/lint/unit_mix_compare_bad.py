"""Seeded mutation: Shaka's 16 KB sample filter compared against bits."""

MIN_SAMPLE_KILOBYTES = 16.0


def sample_too_small(sample_bits: float) -> bool:
    return sample_bits < MIN_SAMPLE_KILOBYTES
