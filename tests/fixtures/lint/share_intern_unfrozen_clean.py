"""Clean twin: interned values are frozen, so the runtime enforces
what SHARE-INTERN-MUTATE can only check syntactically."""

from dataclasses import dataclass

_CACHE = {}


@dataclass(frozen=True)
class Wait:
    duration_s: float = 0.25


def wait_for(key):
    decision = _CACHE.get(key)
    if decision is None:
        decision = _CACHE[key] = Wait()  # lint: allow[POOL-GLOBAL-MUTABLE] per-process intern pool
    return decision
