"""Seeded mutation: an ABR policy hook called inside a '# hot: pure'
fast-forward loop. The closed form replays trace state only; a policy
call here observes state the replay does not reproduce."""


def fast_forward(policy, boundaries, horizon):
    t = 0.0
    # hot: pure
    for boundary in boundaries:
        if boundary > horizon:
            break
        policy.on_chunk_complete(boundary)
        t = boundary
    return t
