"""Clean twin: chunk_bits receives the dimensions its signature declares."""

from repro.units import chunk_bits


def chunk_size(bitrate_kbps: float, duration_s: float) -> float:
    return chunk_bits(bitrate_kbps, duration_s)
