"""Clean twin: converts to kilobytes before comparing."""

from repro.units import bits_to_kilobytes

MIN_SAMPLE_KILOBYTES = 16.0


def sample_too_small(sample_bits: float) -> bool:
    sample_kilobytes = bits_to_kilobytes(sample_bits)
    return sample_kilobytes < MIN_SAMPLE_KILOBYTES
