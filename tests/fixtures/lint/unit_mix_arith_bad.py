"""Seeded mutation: adds a seconds buffer level to a milliseconds duration."""


def rebuffer_budget(buffer_s: float, chunk_duration_ms: float) -> float:
    return buffer_s + chunk_duration_ms
