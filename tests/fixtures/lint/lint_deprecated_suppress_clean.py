"""Clean twin: the retired comment is simply deleted (it suppressed
nothing); real waivers use the unified grammar."""

CHUNK_DURATION_S = 2.0
