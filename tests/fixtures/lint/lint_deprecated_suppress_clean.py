"""Clean twin: the unified grammar names the rule it waives."""

import random


def jitter() -> float:
    return random.random()  # lint: allow[DET-UNSEEDED-RANDOM]
