"""Seeded mutation: a kbps-named estimate holds a bps value."""

from repro.units import kbps_to_bps


def throughput_kbps(measured_kbps: float) -> float:
    estimate_kbps = kbps_to_bps(measured_kbps)
    return estimate_kbps
