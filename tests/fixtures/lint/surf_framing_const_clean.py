"""Clean twin: framing magics and struct formats match the committed
framing surface snapshot byte for byte."""

import struct

SEGMENT_MAGIC = b"RSEG"
_SEGMENT_HEADER = struct.Struct(">QI")
