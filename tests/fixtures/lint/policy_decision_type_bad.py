"""Seeded mutation: choose_next constructs a fresh Download(...) —
the replay and fast-forward kernels compare decisions by interned
canonical value, and fresh construction defeats the intern cache on
the hottest call path."""

from repro.players.base import BasePlayer
from repro.sim.decisions import Download


class RawDecisionPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        return Download(track_id="V1")

    def on_failure(self, medium, failure, ctx):
        return None
