"""Clean twin: decisions come from the intern cache, so identical
decisions stay identity-stable and allocation-free."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class RawDecisionPlayer(BasePlayer):
    def choose_next(self, medium, ctx):
        return download_for("V1")

    def on_failure(self, medium, failure, ctx):
        return None
