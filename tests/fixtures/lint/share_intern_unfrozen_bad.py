"""Seeded mutation: an interning cache stores instances of a class
that is not frozen — any holder can mutate the shared value and every
other holder silently sees the edit."""

from dataclasses import dataclass

_CACHE = {}


@dataclass
class Wait:
    duration_s: float = 0.25


def wait_for(key):
    decision = _CACHE.get(key)
    if decision is None:
        decision = _CACHE[key] = Wait()  # lint: allow[POOL-GLOBAL-MUTABLE] per-process intern pool
    return decision
