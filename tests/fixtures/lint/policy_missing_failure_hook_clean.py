"""Clean twin: the silent inherited failure handling is recorded as a
deliberate choice with the inherit-failure annotation."""

from repro.players.base import BasePlayer
from repro.sim.decisions import download_for


class SilentPlayer(BasePlayer):  # policy: inherit-failure
    def choose_next(self, medium, ctx):
        return download_for("V1")
