"""Clean twin: the converted value lands in a bps-named local."""

from repro.units import kbps_to_bps


def throughput_bps(measured_kbps: float) -> float:
    estimate_bps = kbps_to_bps(measured_kbps)
    return estimate_bps
