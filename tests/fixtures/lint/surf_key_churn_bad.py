"""Seeded mutation: a keyed spec dataclass grows a field (and a new
spec_dict key) without bumping its governing schema version — every
content-addressed cache key changes silently."""

import hashlib
import json
from dataclasses import dataclass

FIXTURE_SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FixtureJob:
    label: str
    seed: int
    retries: int = 0

    def spec_dict(self):
        return {
            "schema": FIXTURE_SPEC_SCHEMA_VERSION,
            "label": self.label,
            "seed": self.seed,
            "retries": self.retries,
        }

    def key(self):
        payload = json.dumps(self.spec_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
