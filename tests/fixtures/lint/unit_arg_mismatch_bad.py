"""Seeded mutation: chunk_bits gets milliseconds for its seconds parameter."""

from repro.units import chunk_bits


def chunk_size(bitrate_kbps: float, duration_ms: float) -> float:
    return chunk_bits(bitrate_kbps, duration_ms)
