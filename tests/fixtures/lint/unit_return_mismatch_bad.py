"""Seeded mutation: a *_ms function returns its seconds argument unscaled."""


def startup_delay_ms(startup_delay_s: float) -> float:
    return startup_delay_s
