"""Clean twin: hot objects declare __slots__."""


class Sample:
    __slots__ = ("t", "kbps")

    def __init__(self, t, kbps):
        self.t = t
        self.kbps = kbps


# hot
def observe(t, kbps):
    return Sample(t, kbps)
