"""ExoPlayer model (DASH and HLS behaviours from Section 3.2)."""

import pytest

from repro.core.combinations import hsub_combinations
from repro.errors import PlayerError
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import b_audio_ladder, c_audio_ladder, drama_show
from repro.media.tracks import MediaType
from repro.net.link import shared
from repro.net.traces import constant
from repro.players.exoplayer import ExoPlayerDash, ExoPlayerHls
from repro.sim.session import simulate

V = MediaType.VIDEO
A = MediaType.AUDIO


class TestDashPredetermination:
    def test_table1_combinations(self, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        assert player.combination_names == [
            "V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V4+A3", "V5+A3", "V6+A3",
        ]

    def test_combination_totals_are_declared_sums(self, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        by_name = {p.name: p for p in player.combinations}
        assert by_name["V3+A2"].total_kbps == pytest.approx(473 + 196)

    def test_bandwidth_fraction_validation(self, dash_manifest):
        with pytest.raises(PlayerError):
            ExoPlayerDash(dash_manifest, bandwidth_fraction=0.0)


class TestDashAdaptation:
    def test_steady_state_at_900kbps(self, content, dash_manifest):
        # 0.75 x 900 = 675 -> highest predetermined total <= 675 is
        # V3+A2 (669).
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(900.0)))
        names = result.combination_names()
        assert names[-1] == "V3+A2"
        assert result.n_stalls == 0

    def test_steady_state_at_3mbps(self, content, dash_manifest):
        # 0.75 x 3000 = 2250 -> V5+A3 (1852+384 = 2236).
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(3000.0)))
        assert result.combination_names()[-1] == "V5+A3"

    def test_very_low_bandwidth_sticks_to_lowest(self, content, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(200.0)))
        assert set(result.combination_names()) == {"V1+A1"}

    def test_selection_stays_within_predetermined(self, content, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(1500.0)))
        assert set(result.combination_names()) <= set(player.combination_names)

    def test_conservative_fraction_blocks_marginal_rung(self, content, dash_manifest):
        # At 700 kbps, V3+A2 (669) would fit the raw estimate but not
        # 0.75 x 700 = 525 -> V2+A2 (442) is the steady state.
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(700.0)))
        assert result.combination_names()[-1] == "V2+A2"


class TestDashHysteresis:
    def test_no_up_switch_with_thin_buffer(self, content, dash_manifest):
        # minDurationForQualityIncrease: the first chunks are fetched at
        # the lowest rung even though the estimate allows more.
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(3000.0)))
        assert result.combination_names()[0] == "V1+A1"

    def test_chunk_level_sync(self, content, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(900.0)))
        # Per-chunk alternation keeps the buffers within one chunk.
        assert result.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6

    def test_audio_and_video_share_positions(self, content, dash_manifest):
        player = ExoPlayerDash(dash_manifest)
        result = simulate(content, player, shared(constant(900.0)))
        for index, video_id, audio_id in result.selected_combinations():
            assert video_id is not None and audio_id is not None


class TestHlsFixedAudio:
    def test_first_rendition_wins(self, content):
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            audio_order=["A2", "A1", "A3"],
        )
        player = ExoPlayerHls(package.master)
        assert player.fixed_audio_id == "A2"
        result = simulate(content, player, shared(constant(2000.0)))
        assert set(result.track_usage(A)) == {"A2"}

    def test_no_audio_adaptation_even_with_bandwidth(self, content, hls_sub):
        player = ExoPlayerHls(hls_sub.master)  # A1 listed first by default
        result = simulate(content, player, shared(constant(5000.0)))
        assert set(result.track_usage(A)) == {"A1"}
        assert result.switch_count(A) == 0

    def test_video_priced_at_first_variant_aggregate(self, content, hls_sub):
        player = ExoPlayerHls(hls_sub.master)
        rungs = dict(player.video_rungs)
        # V3's only H_sub variant is V3+A2: 840 kbps aggregate peak,
        # far above V3's own 641 peak / 473 declared.
        assert rungs["V3"] == pytest.approx(840.0)

    def test_overestimation_suppresses_top_rung(self, content, hls_sub):
        # At 5 Mbps: 0.75 x 5000 = 3750 < V6's priced 4838 -> V5 wins.
        player = ExoPlayerHls(hls_sub.master)
        result = simulate(content, player, shared(constant(5000.0)))
        usage = result.track_usage(V)
        assert "V6" not in usage
        assert max(usage, key=usage.get) == "V5"

    def test_manifest_without_renditions_rejected(self, content):
        package = package_hls(content)
        master = package.master
        stripped = type(master)(variants=master.variants, renditions=())
        with pytest.raises(PlayerError):
            ExoPlayerHls(stripped)

    def test_nonconformant_combinations_possible(self, content):
        """The Fig. 3 finding: fixed audio + independent video pricing
        produces pairs outside the curated manifest subset."""
        package = package_hls(
            content,
            combinations=hsub_combinations(content),
            audio_order=["A3", "A2", "A1"],
        )
        player = ExoPlayerHls(package.master)
        result = simulate(content, player, shared(constant(700.0)))
        used = set(result.combination_names())
        allowed = set(hsub_combinations(content).names)
        assert used - allowed, f"expected non-conformant pairs, got {used}"
