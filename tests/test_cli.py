"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "table2" in out


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "1/1 experiments reproduced" in out

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table1", "table2"]) == 0
        assert "2/2" in capsys.readouterr().out

    def test_no_names_is_an_error(self, capsys):
        assert main(["run"]) == 2

    def test_unknown_name_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "figX"])


class TestSimulate:
    def test_recommended_default(self, capsys):
        assert main(["simulate", "--bandwidth", "900"]) == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "qoe:" in out

    @pytest.mark.parametrize(
        "player", ["exoplayer-dash", "exoplayer-hls", "shaka", "dashjs"]
    )
    def test_each_player_runs(self, capsys, player):
        assert main(["simulate", "--player", player, "--bandwidth", "1500"]) == 0
        assert "completed: True" in capsys.readouterr().out

    def test_all_combinations_mode(self, capsys):
        assert (
            main(["simulate", "--player", "shaka", "--combinations", "all"]) == 0
        )


class TestManifest:
    def test_dash_output(self, capsys):
        assert main(["manifest", "--format", "dash"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<?xml")
        assert "AdaptationSet" in out

    def test_hls_output(self, capsys):
        assert main(["manifest", "--format", "hls", "--combinations", "hsub"]) == 0
        out = capsys.readouterr().out
        assert "### master.m3u8" in out
        assert "#EXT-X-STREAM-INF" in out


class TestLint:
    def test_hall_warns(self, capsys):
        assert main(["lint", "--format", "hls"]) == 0
        assert "HLS-CURATED" in capsys.readouterr().out

    def test_curated_byteranges_clean(self, capsys):
        assert main(["lint", "--format", "hls", "--curated"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_blind_packaging_errors(self, capsys):
        assert main(["lint", "--format", "hls", "--curated", "--chunk-files"]) == 1
        assert "HLS-TRACK-BITRATES" in capsys.readouterr().out

    def test_chunk_files_with_tags_clean(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "--format",
                    "hls",
                    "--curated",
                    "--chunk-files",
                    "--bitrate-tags",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_dash_warns_without_extension(self, capsys):
        assert main(["lint", "--format", "dash"]) == 0
        assert "DASH-COMBINATIONS" in capsys.readouterr().out

    def test_dash_clean_with_extension(self, capsys):
        assert main(["lint", "--format", "dash", "--curated"]) == 0
        assert "clean" in capsys.readouterr().out


class TestTrace:
    def test_preset_summary(self, capsys):
        assert main(["trace", "--preset", "hspa", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "avg" in out and "segments" in out

    def test_write_csv_and_convert_to_mahimahi(self, capsys, tmp_path):
        csv_path = str(tmp_path / "t.csv")
        assert main(["trace", "--preset", "lte", "--output", csv_path]) == 0
        mm_path = str(tmp_path / "t.mm")
        assert (
            main(
                [
                    "trace",
                    "--input",
                    csv_path,
                    "--output",
                    mm_path,
                    "--format",
                    "mahimahi",
                    "--duration",
                    "30",
                ]
            )
            == 0
        )
        from repro.net.mahimahi import load_mahimahi

        assert load_mahimahi(mm_path).average_kbps() > 0

    def test_random_preset_mean(self, capsys):
        assert main(["trace", "--preset", "random", "--mean", "800"]) == 0
        out = capsys.readouterr().out
        assert "avg 800" in out


class TestSimulateDiagnosis:
    def test_diagnosis_printed(self, capsys):
        assert main(["simulate", "--player", "dashjs", "--bandwidth", "700"]) == 0
        out = capsys.readouterr().out
        assert "diagnosis:" in out
        assert "undesirable-pairs" in out

    def test_clean_diagnosis(self, capsys):
        assert main(["simulate", "--bandwidth", "900"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_live_simulation(self, capsys):
        assert main(["simulate", "--bandwidth", "900", "--live-offset", "2"]) == 0
        assert "completed: True" in capsys.readouterr().out


class TestCompare:
    def test_table_lists_all_players(self, capsys):
        assert main(["compare", "--bandwidth", "900"]) == 0
        out = capsys.readouterr().out
        for name in ("exoplayer-dash", "exoplayer-hls", "shaka", "dashjs", "recommended"):
            assert name in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_player_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--player", "vlc"])
