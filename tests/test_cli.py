"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "table2" in out


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "1/1 experiments reproduced" in out

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table1", "table2"]) == 0
        assert "2/2" in capsys.readouterr().out

    def test_no_names_is_an_error(self, capsys):
        assert main(["run"]) == 2

    def test_unknown_name_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "figX"])


class TestSimulate:
    def test_recommended_default(self, capsys):
        assert main(["simulate", "--bandwidth", "900"]) == 0
        out = capsys.readouterr().out
        assert "completed: True" in out
        assert "qoe:" in out

    @pytest.mark.parametrize(
        "player", ["exoplayer-dash", "exoplayer-hls", "shaka", "dashjs"]
    )
    def test_each_player_runs(self, capsys, player):
        assert main(["simulate", "--player", player, "--bandwidth", "1500"]) == 0
        assert "completed: True" in capsys.readouterr().out

    def test_all_combinations_mode(self, capsys):
        assert (
            main(["simulate", "--player", "shaka", "--combinations", "all"]) == 0
        )


class TestManifest:
    def test_dash_output(self, capsys):
        assert main(["manifest", "--format", "dash"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<?xml")
        assert "AdaptationSet" in out

    def test_hls_output(self, capsys):
        assert main(["manifest", "--format", "hls", "--combinations", "hsub"]) == 0
        out = capsys.readouterr().out
        assert "### master.m3u8" in out
        assert "#EXT-X-STREAM-INF" in out


class TestLint:
    def test_hall_warns(self, capsys):
        assert main(["lint", "--format", "hls"]) == 0
        assert "HLS-CURATED" in capsys.readouterr().out

    def test_curated_byteranges_clean(self, capsys):
        assert main(["lint", "--format", "hls", "--curated"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_blind_packaging_errors(self, capsys):
        assert main(["lint", "--format", "hls", "--curated", "--chunk-files"]) == 1
        assert "HLS-TRACK-BITRATES" in capsys.readouterr().out

    def test_chunk_files_with_tags_clean(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "--format",
                    "hls",
                    "--curated",
                    "--chunk-files",
                    "--bitrate-tags",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_dash_warns_without_extension(self, capsys):
        assert main(["lint", "--format", "dash"]) == 0
        assert "DASH-COMBINATIONS" in capsys.readouterr().out

    def test_dash_clean_with_extension(self, capsys):
        assert main(["lint", "--format", "dash", "--curated"]) == 0
        assert "clean" in capsys.readouterr().out


class TestTrace:
    def test_preset_summary(self, capsys):
        assert main(["trace", "--preset", "hspa", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "avg" in out and "segments" in out

    def test_write_csv_and_convert_to_mahimahi(self, capsys, tmp_path):
        csv_path = str(tmp_path / "t.csv")
        assert main(["trace", "--preset", "lte", "--output", csv_path]) == 0
        mm_path = str(tmp_path / "t.mm")
        assert (
            main(
                [
                    "trace",
                    "--input",
                    csv_path,
                    "--output",
                    mm_path,
                    "--format",
                    "mahimahi",
                    "--duration",
                    "30",
                ]
            )
            == 0
        )
        from repro.net.mahimahi import load_mahimahi

        assert load_mahimahi(mm_path).average_kbps() > 0

    def test_random_preset_mean(self, capsys):
        assert main(["trace", "--preset", "random", "--mean", "800"]) == 0
        out = capsys.readouterr().out
        assert "avg 800" in out


class TestSimulateDiagnosis:
    def test_diagnosis_printed(self, capsys):
        assert main(["simulate", "--player", "dashjs", "--bandwidth", "700"]) == 0
        out = capsys.readouterr().out
        assert "diagnosis:" in out
        assert "undesirable-pairs" in out

    def test_clean_diagnosis(self, capsys):
        assert main(["simulate", "--bandwidth", "900"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_live_simulation(self, capsys):
        assert main(["simulate", "--bandwidth", "900", "--live-offset", "2"]) == 0
        assert "completed: True" in capsys.readouterr().out


class TestCompare:
    def test_table_lists_all_players(self, capsys):
        assert main(["compare", "--bandwidth", "900"]) == 0
        out = capsys.readouterr().out
        for name in ("exoplayer-dash", "exoplayer-hls", "shaka", "dashjs", "recommended"):
            assert name in out


class TestTraceImport:
    def test_measured_csv_import(self, capsys, tmp_path):
        import os

        fixture = os.path.join(
            os.path.dirname(__file__), "fixtures", "trace_3g.csv"
        )
        assert (
            main(["trace", "--input", fixture, "--input-format", "measured"]) == 0
        )
        out = capsys.readouterr().out
        assert "segments" in out

    def test_measured_csv_with_unit(self, capsys, tmp_path):
        src = tmp_path / "m.csv"
        src.write_text("0,1.5\n10,2.5\n")
        out_path = str(tmp_path / "out.csv")
        assert (
            main(
                [
                    "trace",
                    "--input",
                    str(src),
                    "--input-format",
                    "measured",
                    "--unit",
                    "mbps",
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        from repro.net.traces import load_trace

        assert load_trace(out_path).bandwidth_at(0) == 1500.0


class TestRecordReplayCli:
    def _record(self, tmp_path, extra=()):
        log = str(tmp_path / "session.events.jsonl")
        code = main(
            ["simulate", "--bandwidth", "900", "--record", log, *extra]
        )
        assert code == 0
        return log

    def test_simulate_record_then_replay(self, capsys, tmp_path):
        log = self._record(tmp_path)
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", log]) == 0
        out = capsys.readouterr().out
        assert "events:" in out and "verdict" in out

    def test_replay_verify_is_byte_identical(self, capsys, tmp_path):
        log = self._record(tmp_path)
        capsys.readouterr()
        assert main(["replay", log, "--verify"]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_replay_torn_log(self, capsys, tmp_path):
        import os

        log = self._record(tmp_path)
        with open(log, "r+b") as f:
            f.truncate(os.path.getsize(log) - 20)
        # A tear is survivable: the prefix replays (exit 0), the damage
        # and the missing verdict are reported. --strict tolerates
        # truncation too — it only refuses *corruption*.
        assert main(["replay", log]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out and "torn prefix" in out
        assert main(["replay", log, "--strict"]) == 0

    def test_replay_corrupt_log_strict(self, capsys, tmp_path):
        log = self._record(tmp_path)
        with open(log, "rb") as f:
            lines = f.read().splitlines(keepends=True)
        flipped = bytearray(lines[2])
        flipped[-3] ^= 0x40  # damage a mid-log line, leave it terminated
        with open(log, "wb") as f:
            f.write(b"".join(lines[:2]) + bytes(flipped) + b"".join(lines[3:]))
        assert main(["replay", log]) == 0  # lenient: prefix still replays
        assert "corrupt" in capsys.readouterr().out
        assert main(["replay", log, "--strict"]) == 2

    def test_replay_missing_file(self, capsys, tmp_path):
        assert main(["replay", str(tmp_path / "nope.jsonl")]) == 2

    def test_diff_events_identical_and_perturbed(self, capsys, tmp_path):
        log_a = self._record(tmp_path)
        log_b = str(tmp_path / "b.events.jsonl")
        import shutil

        shutil.copy(log_a, log_b)
        assert main(["diff-events", log_a, log_b]) == 0
        assert "identical" in capsys.readouterr().out
        # Perturb one estimate in B: the differ must localize it.
        from repro.framing import frame_line, scan_line_file
        from repro.replay import decode_event, encode_event

        scan = scan_line_file(log_b)
        events = [decode_event(p) for p in scan.payloads]
        for event in events:
            if event["k"] == "estimate":
                event["kbps"] = event["kbps"] * 1.5 + 1.0
                break
        with open(log_b, "wb") as f:
            for event in events:
                f.write(frame_line(encode_event(event)))
        assert main(["diff-events", log_a, log_b]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out and "kbps" in out
        assert main(["diff-events", log_a, log_b, "--rtol", "10"]) == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_player_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--player", "vlc"])
