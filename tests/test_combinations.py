"""Combination machinery (the substance of Tables 2 and 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.combinations import (
    Combination,
    CombinationSet,
    all_combinations,
    combinations_from_pairs,
    curated_combinations,
    hsub_combinations,
    proportional_pairing,
)
from repro.errors import MediaError
from repro.experiments.tables import PAPER_TABLE2, PAPER_TABLE3
from repro.media.content import synthetic_content
from repro.media.tracks import audio_track, video_track


class TestCombination:
    def test_aggregates_are_sums(self, content):
        combo = Combination(video=content.video.by_id("V3"), audio=content.audio.by_id("A2"))
        assert combo.avg_kbps == 362 + 196
        assert combo.peak_kbps == 641 + 199
        assert combo.declared_kbps == 473 + 196

    def test_name(self, content):
        combo = Combination(video=content.video.by_id("V1"), audio=content.audio.by_id("A3"))
        assert combo.name == "V1+A3"

    def test_video_role_enforced(self, content):
        with pytest.raises(MediaError):
            Combination(video=content.audio.by_id("A1"), audio=content.audio.by_id("A2"))

    def test_audio_role_enforced(self, content):
        with pytest.raises(MediaError):
            Combination(video=content.video.by_id("V1"), audio=content.video.by_id("V2"))


class TestTable2:
    def test_all_18_combinations(self, hall_combos):
        assert len(hall_combos) == 18

    def test_every_row_matches_paper(self, hall_combos):
        for name, avg, peak in hall_combos.rows():
            assert (avg, peak) == PAPER_TABLE2[name], name

    def test_ordered_by_peak(self, hall_combos):
        peaks = [c.peak_kbps for c in hall_combos]
        assert peaks == sorted(peaks)

    def test_first_and_last(self, hall_combos):
        assert hall_combos.lowest.name == "V1+A1"
        assert hall_combos.highest.name == "V6+A3"


class TestTable3:
    def test_six_combinations(self, hsub_combos):
        assert len(hsub_combos) == 6

    def test_rows_match_paper(self, hsub_combos):
        for name, avg, peak in hsub_combos.rows():
            assert (avg, peak) == PAPER_TABLE3[name], name

    def test_high_video_pairs_high_audio(self, hsub_combos):
        # The curation property the paper describes.
        assert set(hsub_combos.names) == {
            "V1+A1",
            "V2+A1",
            "V3+A2",
            "V4+A2",
            "V5+A3",
            "V6+A3",
        }


class TestCombinationSet:
    def test_contains_by_name_and_object(self, hsub_combos):
        assert "V3+A2" in hsub_combos
        assert hsub_combos.by_name("V3+A2") in hsub_combos
        assert "V3+A3" not in hsub_combos

    def test_by_name_missing(self, hsub_combos):
        with pytest.raises(MediaError):
            hsub_combos.by_name("V9+A9")

    def test_video_and_audio_tracks(self, hsub_combos):
        assert [t.track_id for t in hsub_combos.video_tracks()] == [
            "V1",
            "V2",
            "V3",
            "V4",
            "V5",
            "V6",
        ]
        assert [t.track_id for t in hsub_combos.audio_tracks()] == ["A1", "A2", "A3"]

    def test_empty_rejected(self):
        with pytest.raises(MediaError):
            CombinationSet([])

    def test_duplicates_rejected(self, content):
        combo = Combination(video=content.video.by_id("V1"), audio=content.audio.by_id("A1"))
        with pytest.raises(MediaError):
            CombinationSet([combo, combo])

    def test_rows_with_declared(self, hsub_combos):
        rows = hsub_combos.rows(include_declared=True)
        assert rows[0] == ("V1+A1", 239, 253, 239)


class TestSelectionHelpers:
    def test_highest_below_peak(self, hall_combos):
        # Fig. 4(a): at a 500 kbps estimate, V2+A2 (460) is the pick.
        assert hall_combos.highest_below(500).name == "V2+A2"

    def test_highest_below_falls_back_to_lowest(self, hall_combos):
        assert hall_combos.highest_below(10).name == "V1+A1"

    def test_highest_below_avg_key(self, hall_combos):
        assert hall_combos.highest_below(500, key="avg").name == "V1+A3"

    def test_highest_below_declared_key(self, hall_combos):
        chosen = hall_combos.highest_below(700, key="declared")
        assert chosen.declared_kbps <= 700

    def test_closest_to(self, hall_combos):
        # 500 is closer to 510 (V1+A3) than to 460 (V2+A2).
        assert hall_combos.closest_to(500).name == "V1+A3"

    def test_bad_key_rejected(self, hall_combos):
        with pytest.raises(ValueError):
            hall_combos.highest_below(500, key="median")


class TestPairing:
    def test_proportional_unbiased(self, content):
        pairs = proportional_pairing(content.video, content.audio)
        assert pairs == [
            ("V1", "A1"),
            ("V2", "A1"),
            ("V3", "A2"),
            ("V4", "A2"),
            ("V5", "A3"),
            ("V6", "A3"),
        ]

    def test_music_bias_raises_audio(self, content):
        pairs = proportional_pairing(content.video, content.audio, audio_bias=0.5)
        unbiased = proportional_pairing(content.video, content.audio)
        audio_rank = {tid: i for i, tid in enumerate(content.audio.track_ids)}
        for (_, biased_audio), (_, base_audio) in zip(pairs, unbiased):
            assert audio_rank[biased_audio] >= audio_rank[base_audio]

    def test_action_bias_lowers_audio(self, content):
        pairs = proportional_pairing(content.video, content.audio, audio_bias=-0.5)
        audio_rank = {tid: i for i, tid in enumerate(content.audio.track_ids)}
        unbiased = proportional_pairing(content.video, content.audio)
        for (_, biased_audio), (_, base_audio) in zip(pairs, unbiased):
            assert audio_rank[biased_audio] <= audio_rank[base_audio]

    def test_single_rung_ladders(self):
        small = synthetic_content("s", [100], [48], n_chunks=2)
        pairs = proportional_pairing(small.video, small.audio)
        assert pairs == [("V1", "A1")]

    def test_hsub_is_the_unbiased_proportional_pairing(self, content, hsub_combos):
        assert (
            tuple(curated_combinations(content).names) == hsub_combos.names
        )


class TestCuratedCombinations:
    def test_name_filter(self, content):
        combos = curated_combinations(content, name_filter=["V1+A1", "V3+A2"])
        assert set(combos.names) == {"V1+A1", "V3+A2"}

    def test_name_filter_excluding_everything_rejected(self, content):
        with pytest.raises(MediaError):
            curated_combinations(content, name_filter=["V9+A9"])

    def test_combinations_from_pairs_unknown_track(self, content):
        with pytest.raises(MediaError):
            combinations_from_pairs(content, [("V9", "A1")])


@st.composite
def _ladder_bitrates(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    rates = draw(
        st.lists(
            st.floats(min_value=30, max_value=5000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return sorted(rates)


class TestCombinationProperties:
    @settings(max_examples=30, deadline=None)
    @given(video=_ladder_bitrates(), audio=_ladder_bitrates())
    def test_all_combinations_size_and_order(self, video, audio):
        synthetic = synthetic_content("p", video, audio, n_chunks=2)
        combos = all_combinations(synthetic)
        assert len(combos) == len(video) * len(audio)
        peaks = [c.peak_kbps for c in combos]
        assert peaks == sorted(peaks)

    @settings(max_examples=30, deadline=None)
    @given(
        video=_ladder_bitrates(),
        audio=_ladder_bitrates(),
        budget=st.floats(min_value=10, max_value=20000),
    )
    def test_highest_below_respects_budget_or_is_lowest(self, video, audio, budget):
        synthetic = synthetic_content("p", video, audio, n_chunks=2)
        combos = all_combinations(synthetic)
        chosen = combos.highest_below(budget)
        if chosen is not combos.lowest:
            assert chosen.peak_kbps <= budget
        better = [
            c for c in combos if c.peak_kbps <= budget and c.peak_kbps > chosen.peak_kbps
        ]
        assert not better
