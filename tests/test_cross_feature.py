"""Cross-feature integration: the extensions composed together."""

import pytest

from repro.core.chunk_aware import ChunkAwarePlayer
from repro.core.combinations import curated_combinations, hsub_combinations
from repro.core.mpc import MpcPlayer
from repro.core.player import RecommendedPlayer
from repro.analysis import analyze_text
from repro.manifest.hls import write_master_playlist
from repro.manifest.packager import package_hls, package_hls_multilanguage
from repro.media.content import drama_show
from repro.media.languages import make_catalog
from repro.media.muxed import muxed_content
from repro.media.tracks import MediaType
from repro.net.failures import FailureModel
from repro.net.link import shared
from repro.net.markov import hspa_preset, lte_preset
from repro.net.traces import constant
from repro.qoe.diagnosis import Pathology, diagnose
from repro.qoe.metrics import compute_qoe
from repro.sim.session import SessionConfig, simulate

V = MediaType.VIDEO


class TestLivePlusFailuresPlusMarkov:
    def test_live_flaky_cellular_session(self, content, hsub_combos):
        """The harshest composition: live edge + request failures +
        Markov cellular link — the session must still complete with all
        invariants intact."""
        config = SessionConfig(
            live_offset_s=2.0,
            startup_threshold_s=15.0,  # join 3 chunks behind
            failure_model=FailureModel(0.1, seed=6),
        )
        player = RecommendedPlayer(hsub_combos)
        result = simulate(content, player, shared(lte_preset(seed=6)), config)
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)
        # Time conservation still holds with failures and live gating.
        assert result.ended_at_s == pytest.approx(
            result.startup_delay_s + content.duration_s + result.total_rebuffer_s,
            abs=1e-6,
        )
        # Live property: no chunk fetched before its publication.
        for record in result.downloads:
            assert record.started_at >= record.chunk_index * 5.0 + 2.0 - 1e-9

    def test_live_failures_increase_latency_only(self, content, hsub_combos):
        clean = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(constant(1500.0)),
            SessionConfig(live_offset_s=2.0, startup_threshold_s=15.0),
        )
        flaky = simulate(
            content,
            RecommendedPlayer(hsub_combos),
            shared(constant(1500.0)),
            SessionConfig(
                live_offset_s=2.0,
                startup_threshold_s=15.0,
                failure_model=FailureModel(0.2, seed=8),
            ),
        )
        assert flaky.completed
        assert flaky.ended_at_s >= clean.ended_at_s - 1e-6


class TestLanguagesPlusChunkAwarePlusLint:
    def test_spanish_catalog_end_to_end(self, content):
        """Multi-language packaging feeds the chunk-aware player the
        same way a single-language one does."""
        catalog = make_catalog(content, ["en", "es"], default_lang="en")
        spanish = catalog.content_for("es")
        combos = curated_combinations(spanish)
        package = package_hls(spanish, combinations=combos)
        player = ChunkAwarePlayer.from_hls_package(combos, package)
        result = simulate(spanish, player, shared(constant(1200.0)))
        assert result.completed
        assert all(
            audio_id.endswith("-es")
            for _, _, audio_id in result.selected_combinations()
        )

    def test_multilanguage_master_lints_clean_when_curated(self, content):
        catalog = make_catalog(content, ["en", "es", "fr"], default_lang="en")
        package = package_hls_multilanguage(
            catalog, combinations=hsub_combinations(content)
        )
        text = write_master_playlist(package.master)
        assert analyze_text("master.m3u8", text) == []


class TestMuxedPlusDiagnosis:
    def test_muxed_session_not_flagged_for_fixed_audio(self, content, hsub_combos):
        """The muxed marker track is a modelling artifact; the diagnoser
        must not mistake it for the fixed-audio pathology (the muxed
        audio ladder has a single rung, which the detector respects)."""
        muxed = muxed_content(content, combinations=hsub_combos)
        from repro.core.combinations import all_combinations

        player = RecommendedPlayer(all_combinations(muxed))
        result = simulate(muxed, player, shared(constant(1000.0)))
        found = {d.pathology for d in diagnose(result, muxed)}
        assert Pathology.FIXED_AUDIO not in found


class TestMpcOnCellular:
    def test_mpc_handles_markov_links(self, content, hsub_combos):
        player = MpcPlayer(hsub_combos)
        result = simulate(content, player, shared(hspa_preset(seed=3)))
        assert result.completed
        qoe = compute_qoe(result, content)
        assert qoe.undesirable_chunks == 0

    def test_mpc_with_failures(self, content, hsub_combos):
        config = SessionConfig(failure_model=FailureModel(0.1, seed=4))
        result = simulate(
            content, MpcPlayer(hsub_combos), shared(constant(1000.0)), config
        )
        assert result.completed
        assert set(result.combination_names()) <= set(hsub_combos.names)
