"""ExoPlayer's predetermined-combination algorithm — the paper's three
documented outputs plus structural properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlayerError
from repro.players.allocation import (
    RungPair,
    exoplayer_predetermined_combinations,
    normalized_switch_points,
)

TABLE1_VIDEO = [
    ("V1", 111.0), ("V2", 246.0), ("V3", 473.0),
    ("V4", 914.0), ("V5", 1852.0), ("V6", 3746.0),
]
TABLE1_AUDIO = [("A1", 128.0), ("A2", 196.0), ("A3", 384.0)]
B_AUDIO = [("B1", 32.0), ("B2", 64.0), ("B3", 128.0)]
C_AUDIO = [("C1", 196.0), ("C2", 384.0), ("C3", 768.0)]


def names(pairs):
    return [p.name for p in pairs]


class TestPaperOutputs:
    def test_table1_ladder(self):
        """Section 3.2: "the resultant combinations ... are V1+A1, V2+A1,
        V2+A2, V3+A2, V4+A2, V4+A3, V5+A3, and V6+A3"."""
        pairs = exoplayer_predetermined_combinations(TABLE1_VIDEO, TABLE1_AUDIO)
        assert names(pairs) == [
            "V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V4+A3", "V5+A3", "V6+A3",
        ]

    def test_b_ladder(self):
        """"the predetermined combinations are V1+B1, V2+B1, V2+B2,
        V3+B2, V4+B2, V5+B2, V5+B3, and V6+B3"."""
        pairs = exoplayer_predetermined_combinations(TABLE1_VIDEO, B_AUDIO)
        assert names(pairs) == [
            "V1+B1", "V2+B1", "V2+B2", "V3+B2", "V4+B2", "V5+B2", "V5+B3", "V6+B3",
        ]

    def test_c_ladder(self):
        """"the predetermined combinations are V1+C1, V2+C1, V2+C2,
        V3+C2, V4+C2, V5+C2, V5+C3, and V6+C3"."""
        pairs = exoplayer_predetermined_combinations(TABLE1_VIDEO, C_AUDIO)
        assert names(pairs) == [
            "V1+C1", "V2+C1", "V2+C2", "V3+C2", "V4+C2", "V5+C2", "V5+C3", "V6+C3",
        ]

    def test_fig2a_exclusion(self):
        # V3+B3 fits a 900 kbps link but is excluded — the Fig. 2(a) issue.
        pairs = exoplayer_predetermined_combinations(TABLE1_VIDEO, B_AUDIO)
        assert "V3+B3" not in names(pairs)
        assert 473 + 128 < 900

    def test_fig2b_exclusion(self):
        pairs = exoplayer_predetermined_combinations(TABLE1_VIDEO, C_AUDIO)
        assert "V3+C1" not in names(pairs)


class TestSwitchPoints:
    def test_log_midpoints_normalized(self):
        points = normalized_switch_points([100.0, 400.0, 1600.0])
        # Log-equidistant ladder: midpoints at 1/4 and 3/4 of the range.
        assert points == pytest.approx([0.25, 0.75])

    def test_two_rungs(self):
        assert normalized_switch_points([100.0, 900.0]) == pytest.approx([0.5])

    def test_single_rung_no_points(self):
        assert normalized_switch_points([100.0]) == []

    def test_flat_ladder_degenerate(self):
        assert normalized_switch_points([100.0, 100.0]) == [1.0]

    def test_empty_rejected(self):
        with pytest.raises(PlayerError):
            normalized_switch_points([])

    def test_unsorted_rejected(self):
        with pytest.raises(PlayerError):
            normalized_switch_points([200.0, 100.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(PlayerError):
            normalized_switch_points([0.0, 100.0])


class TestRungPair:
    def test_total_and_name(self):
        pair = RungPair("V1", "A1", 111.0, 128.0)
        assert pair.total_kbps == 239.0
        assert pair.name == "V1+A1"


class TestStructuralProperties:
    def test_empty_ladder_rejected(self):
        with pytest.raises(PlayerError):
            exoplayer_predetermined_combinations([], TABLE1_AUDIO)

    # Integer kbps: real ladders have well-separated rungs; floats a
    # few ulps apart create degenerate log-midpoints that no encoder
    # emits and that drown the invariants in rounding noise.
    @settings(max_examples=60, deadline=None)
    @given(
        video=st.lists(
            st.integers(min_value=50, max_value=8000), min_size=1, max_size=8, unique=True
        ),
        audio=st.lists(
            st.integers(min_value=16, max_value=800), min_size=1, max_size=5, unique=True
        ),
    )
    def test_staircase_invariants(self, video, audio):
        video_rungs = [(f"V{i}", kbps) for i, kbps in enumerate(sorted(video))]
        audio_rungs = [(f"A{i}", kbps) for i, kbps in enumerate(sorted(audio))]
        pairs = exoplayer_predetermined_combinations(video_rungs, audio_rungs)
        # Exactly M + N - 1 combinations.
        assert len(pairs) == len(video) + len(audio) - 1
        # Starts lowest/lowest, ends highest/highest.
        assert pairs[0].video_id == video_rungs[0][0]
        assert pairs[0].audio_id == audio_rungs[0][0]
        assert pairs[-1].video_id == video_rungs[-1][0]
        assert pairs[-1].audio_id == audio_rungs[-1][0]
        # "two adjacent combinations have either the same video or audio
        # track" — each step moves exactly one medium one rung up.
        video_index = {tid: i for i, (tid, _) in enumerate(video_rungs)}
        audio_index = {tid: i for i, (tid, _) in enumerate(audio_rungs)}
        for first, second in zip(pairs, pairs[1:]):
            video_step = video_index[second.video_id] - video_index[first.video_id]
            audio_step = audio_index[second.audio_id] - audio_index[first.audio_id]
            assert sorted((video_step, audio_step)) == [0, 1]
        # Totals strictly increase (so rate selection is well defined).
        totals = [p.total_kbps for p in pairs]
        assert all(b > a for a, b in zip(totals, totals[1:]))
