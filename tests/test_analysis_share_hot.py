"""SHARE-* / HOT-* rule families, the ``# hot`` / ``# shared``
annotation grammar, interprocedural UNIT flow through the program
index, and the LINT-UNUSED-SUPPRESS autofix.

The fixture corpus in ``tests/fixtures/lint/`` pins one bad/clean pair
per rule; these tests cover the behavioral edges the pairs don't:
annotation placement, init-method carve-outs, cross-module summaries,
and fix idempotence.
"""

from repro.analysis import analyze_files, analyze_text, fix_files


def rules_of(text, name="m.py"):
    return [f.rule for f in analyze_text(name, text)]


class TestShareMutatesShared:
    SHARED_CLASS = (
        "# shared\n"
        "class Trace:\n"
        "    def __init__(self, segments):\n"
        "        self.segments = segments\n"
        "        self.cursor = 0\n"
        "{method}"
    )

    def test_post_init_write_is_flagged(self):
        text = self.SHARED_CLASS.format(
            method=(
                "    def locate(self, t):\n"
                "        self.cursor = t\n"
                "        return self.cursor\n"
            )
        )
        assert rules_of(text) == ["SHARE-MUTATES-SHARED"]

    def test_init_writes_are_exempt(self):
        text = self.SHARED_CLASS.format(
            method=(
                "    def locate(self, t):\n"
                "        return self.segments[0]\n"
            )
        )
        assert rules_of(text) == []

    def test_mutator_call_on_self_attr_is_flagged(self):
        text = self.SHARED_CLASS.format(
            method=(
                "    def locate(self, t):\n"
                "        self.segments.append(t)\n"
            )
        )
        assert rules_of(text) == ["SHARE-MUTATES-SHARED"]

    def test_subscript_store_is_flagged(self):
        text = self.SHARED_CLASS.format(
            method=(
                "    def locate(self, t):\n"
                "        self.segments[0] = t\n"
            )
        )
        assert rules_of(text) == ["SHARE-MUTATES-SHARED"]

    def test_unmarked_class_is_not_checked(self):
        text = (
            "class Trace:\n"
            "    def __init__(self):\n"
            "        self.cursor = 0\n"
            "    def locate(self, t):\n"
            "        self.cursor = t\n"
        )
        assert rules_of(text) == []

    def test_setstate_is_exempt_like_init(self):
        text = self.SHARED_CLASS.format(
            method=(
                "    def __setstate__(self, state):\n"
                "        self.segments = state\n"
            )
        )
        assert rules_of(text) == []


class TestShareMutableDefault:
    def test_positional_default(self):
        assert rules_of("def f(history=[]):\n    return history\n") == [
            "SHARE-MUTABLE-DEFAULT"
        ]

    def test_keyword_only_default(self):
        assert rules_of("def f(*, cache={}):\n    return cache\n") == [
            "SHARE-MUTABLE-DEFAULT"
        ]

    def test_ctor_call_default(self):
        assert rules_of("def f(seen=set()):\n    return seen\n") == [
            "SHARE-MUTABLE-DEFAULT"
        ]

    def test_none_default_is_clean(self):
        assert rules_of("def f(history=None):\n    return history\n") == []

    def test_immutable_defaults_are_clean(self):
        assert rules_of("def f(n=3, name='x', pair=(1, 2)):\n    pass\n") == []


class TestHotAnnotationGrammar:
    def test_trailing_comment_on_def_line(self):
        text = (
            "def step(samples):  # hot\n"
            "    for s in samples:\n"
            "        acc = [s]\n"
            "    return acc\n"
        )
        assert rules_of(text) == ["HOT-ALLOC-IN-LOOP"]

    def test_comment_on_line_above_def(self):
        text = (
            "# hot\n"
            "def step(samples):\n"
            "    for s in samples:\n"
            "        acc = {s: 1}\n"
            "    return acc\n"
        )
        assert rules_of(text) == ["HOT-ALLOC-IN-LOOP"]

    def test_unannotated_function_is_not_checked(self):
        text = (
            "def step(samples):\n"
            "    for s in samples:\n"
            "        acc = [s]\n"
            "    return acc\n"
        )
        assert rules_of(text) == []

    def test_hot_must_start_the_comment(self):
        # "# not hot" or "# see hot path" must not mark the function.
        text = (
            "def step(samples):  # not hot\n"
            "    for s in samples:\n"
            "        acc = [s]\n"
            "    return acc\n"
        )
        assert rules_of(text) == []

    def test_nested_loop_alloc_reported_once(self):
        text = (
            "def step(rows):  # hot\n"
            "    for row in rows:\n"
            "        for cell in row:\n"
            "            acc = [cell]\n"
            "    return acc\n"
        )
        findings = analyze_text("m.py", text)
        assert [f.rule for f in findings] == ["HOT-ALLOC-IN-LOOP"]


class TestHotImpureFastForward:
    def test_policy_hook_in_pure_loop(self):
        text = (
            "def ff(policy, ts):\n"
            "    # hot: pure\n"
            "    for t in ts:\n"
            "        policy.on_chunk_complete(t)\n"
        )
        assert rules_of(text) == ["HOT-IMPURE-FASTFORWARD"]

    def test_rng_in_pure_loop(self):
        text = (
            "import random\n"
            "def ff(ts):\n"
            "    # hot: pure\n"
            "    for t in ts:\n"
            "        x = random.random()  # lint: allow[DET-UNSEEDED-RANDOM]\n"
            "    return x\n"
        )
        assert rules_of(text) == ["HOT-IMPURE-FASTFORWARD"]

    def test_plain_hot_loop_is_not_purity_checked(self):
        text = (
            "def ff(policy, ts):\n"
            "    # hot\n"
            "    for t in ts:\n"
            "        policy.on_chunk_complete(t)\n"
        )
        assert rules_of(text) == []


class TestHotSlots:
    def test_write_outside_slots(self):
        text = (
            "class Lane:\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 1\n"
        )
        assert rules_of(text) == ["HOT-SLOTS-VIOLATION"]

    def test_inherited_slots_union(self):
        text = (
            "class Base:\n"
            "    __slots__ = ('a',)\n"
            "class Lane(Base):\n"
            "    __slots__ = ('b',)\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 1\n"
        )
        assert rules_of(text) == []

    def test_slotless_base_disables_the_check(self):
        # A base without __slots__ gives instances a __dict__, so any
        # attribute is legal; the check must stay silent.
        text = (
            "class Base:\n"
            "    pass\n"
            "class Lane(Base):\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 1\n"
        )
        assert rules_of(text) == []


class TestInterproceduralUnits:
    def test_return_dim_flows_across_modules(self):
        files = {
            "units_helpers.py": (
                "def startup_delay_ms(result):\n"
                "    return result.startup_ms\n"
            ),
            "report.py": (
                "from units_helpers import startup_delay_ms\n"
                "def f(result, budget_s):\n"
                "    return startup_delay_ms(result) + budget_s\n"
            ),
        }
        findings = analyze_files(files)
        assert [(f.file, f.rule) for f in findings] == [
            ("report.py", "UNIT-MIX-ARITH")
        ]

    def test_transitive_return_dim(self):
        # a() returns b()'s value; b's suffix gives the dim, resolved by
        # the fixed-point pass over the whole-program index.
        files = {
            "a.py": (
                "from b import horizon_ms\n"
                "def horizon(cfg):\n"
                "    return horizon_ms(cfg)\n"
            ),
            "b.py": "def horizon_ms(cfg):\n    return cfg.h_ms\n",
            "use.py": (
                "from a import horizon\n"
                "def f(cfg, deadline_s):\n"
                "    return horizon(cfg) > deadline_s\n"
            ),
        }
        findings = analyze_files(files)
        assert [(f.file, f.rule) for f in findings] == [
            ("use.py", "UNIT-MIX-COMPARE")
        ]

    def test_cross_module_param_names_checked_positionally(self):
        files = {
            "sender.py": "def send(timeout_s):\n    return timeout_s\n",
            "caller.py": (
                "from sender import send\n"
                "def f(grace_ms):\n"
                "    return send(grace_ms)\n"
            ),
        }
        findings = analyze_files(files)
        assert [(f.file, f.rule) for f in findings] == [
            ("caller.py", "UNIT-ARG-MISMATCH")
        ]

    def test_colliding_names_with_conflicting_facts_go_ambiguous(self):
        # Two modules define f() with different return dims: the merged
        # index must refuse to guess, so no finding anywhere.
        files = {
            "a.py": "def f(x):\n    return x.v_ms\n",
            "b.py": "def f(x):\n    return x.v_s\n",
            "use.py": (
                "from a import f\n"
                "def g(x, budget_s):\n"
                "    return f(x) + budget_s\n"
            ),
        }
        assert analyze_files(files) == []


class TestUnusedSuppressFix:
    def test_single_stale_token_comment_line_removed(self):
        files = {
            "m.py": "X_S = 1.0  # lint: allow[UNIT-ASSIGN-MISMATCH]\n"
        }
        result = fix_files(files)
        assert result.files["m.py"] == "X_S = 1.0\n"
        assert [f.rule for f in result.fixed] == ["LINT-UNUSED-SUPPRESS"]

    def test_stale_token_removed_from_live_list(self):
        files = {
            "m.py": (
                "import random\n"
                "x = random.random()"
                "  # lint: allow[DET-UNSEEDED-RANDOM, UNIT-MIX-ARITH]\n"
            )
        }
        result = fix_files(files)
        assert result.files["m.py"] == (
            "import random\n"
            "x = random.random()  # lint: allow[DET-UNSEEDED-RANDOM]\n"
        )

    def test_prose_after_grammar_survives(self):
        files = {
            "m.py": (
                "X_S = 1.0  # lint: allow[UNIT-ASSIGN-MISMATCH]"
                " keeps the ladder honest\n"
            )
        }
        result = fix_files(files)
        assert result.files["m.py"] == "X_S = 1.0  # keeps the ladder honest\n"

    def test_fix_is_idempotent(self):
        files = {
            "m.py": "X_S = 1.0  # lint: allow[UNIT-ASSIGN-MISMATCH]\n"
        }
        once = fix_files(files)
        twice = fix_files(dict(once.files))
        assert twice.files == once.files
        assert twice.fixed == []
