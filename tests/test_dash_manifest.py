"""DASH MPD model, writer and parser."""

import pytest

from repro.errors import ManifestError, ManifestParseError
from repro.manifest.dash import (
    DashAdaptationSet,
    DashManifest,
    DashRepresentation,
    DashSegmentTemplate,
    _format_duration,
    _parse_duration,
    build_dash_manifest,
    parse_mpd,
    write_mpd,
)
from repro.manifest.packager import package_dash


class TestDurationFormat:
    @pytest.mark.parametrize(
        "seconds,text",
        [
            (300.0, "PT5M0.000S"),
            (0.5, "PT0.500S"),
            (3725.25, "PT1H2M5.250S"),
            (59.999, "PT59.999S"),
        ],
    )
    def test_format(self, seconds, text):
        assert _format_duration(seconds) == text

    @pytest.mark.parametrize("seconds", [300.0, 0.5, 3725.25, 0.0, 86399.123])
    def test_roundtrip(self, seconds):
        assert _parse_duration(_format_duration(seconds)) == pytest.approx(seconds)

    def test_parse_rejects_non_pt(self):
        with pytest.raises(ManifestParseError):
            _parse_duration("5M")

    def test_parse_rejects_trailing_number(self):
        with pytest.raises(ManifestParseError):
            _parse_duration("PT5M3")

    def test_parse_rejects_bad_component(self):
        with pytest.raises(ManifestParseError):
            _parse_duration("PT5X")

    def test_format_rejects_negative(self):
        with pytest.raises(ManifestError):
            _format_duration(-1)


class TestModelValidation:
    def test_representation_requires_positive_bandwidth(self):
        with pytest.raises(ManifestError):
            DashRepresentation(rep_id="V1", bandwidth_bps=0)

    def test_representation_requires_id(self):
        with pytest.raises(ManifestError):
            DashRepresentation(rep_id="", bandwidth_bps=1000)

    def test_adaptation_set_content_type(self):
        rep = DashRepresentation(rep_id="V1", bandwidth_bps=1000)
        with pytest.raises(ManifestError):
            DashAdaptationSet(content_type="subtitles", representations=(rep,))

    def test_adaptation_set_needs_representations(self):
        with pytest.raises(ManifestError):
            DashAdaptationSet(content_type="video", representations=())

    def test_adaptation_set_duplicate_ids(self):
        rep = DashRepresentation(rep_id="V1", bandwidth_bps=1000)
        with pytest.raises(ManifestError):
            DashAdaptationSet(content_type="video", representations=(rep, rep))

    def test_manifest_duration_positive(self):
        rep = DashRepresentation(rep_id="V1", bandwidth_bps=1000)
        aset = DashAdaptationSet(content_type="video", representations=(rep,))
        with pytest.raises(ManifestError):
            DashManifest(duration_s=0, adaptation_sets=(aset,))

    def test_manifest_duplicate_sets(self):
        rep = DashRepresentation(rep_id="V1", bandwidth_bps=1000)
        aset = DashAdaptationSet(content_type="video", representations=(rep,))
        with pytest.raises(ManifestError):
            DashManifest(duration_s=10, adaptation_sets=(aset, aset))

    def test_missing_adaptation_set_lookup(self, dash_manifest):
        with pytest.raises(ManifestError):
            dash_manifest.adaptation_set("subtitles")


class TestBuildFromContent:
    def test_declared_bitrates(self, content, dash_manifest):
        # The MPD bandwidth attribute carries the *declared* bitrate.
        by_id = {r.rep_id: r for r in dash_manifest.video.representations}
        assert by_id["V3"].bandwidth_bps == 473_000
        assert by_id["V6"].bandwidth_bps == 3_746_000

    def test_audio_channels(self, dash_manifest):
        by_id = {r.rep_id: r for r in dash_manifest.audio.representations}
        assert by_id["A1"].audio_channels == 2
        assert by_id["A3"].audio_channels == 6

    def test_duration(self, content, dash_manifest):
        assert dash_manifest.duration_s == content.duration_s

    def test_no_allowed_combinations_by_default(self, dash_manifest):
        # Standard DASH: no combination restriction (the paper's critique).
        assert dash_manifest.allowed_combinations is None

    def test_allowed_combinations_extension(self, content, hsub_combos):
        manifest = package_dash(content, allowed_combinations=hsub_combos)
        assert manifest.allowed_combinations == (
            ("V1", "A1"),
            ("V2", "A1"),
            ("V3", "A2"),
            ("V4", "A2"),
            ("V5", "A3"),
            ("V6", "A3"),
        )


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, dash_manifest):
        parsed = parse_mpd(write_mpd(dash_manifest))
        assert parsed.duration_s == pytest.approx(dash_manifest.duration_s)
        assert len(parsed.adaptation_sets) == 2
        for original, reparsed in zip(
            dash_manifest.video.representations, parsed.video.representations
        ):
            assert original == reparsed
        for original, reparsed in zip(
            dash_manifest.audio.representations, parsed.audio.representations
        ):
            assert original == reparsed

    def test_roundtrip_with_extension(self, content, hsub_combos):
        manifest = package_dash(content, allowed_combinations=hsub_combos)
        parsed = parse_mpd(write_mpd(manifest))
        assert parsed.allowed_combinations == manifest.allowed_combinations

    def test_xml_declares_namespace(self, dash_manifest):
        text = write_mpd(dash_manifest)
        assert 'xmlns="urn:mpeg:dash:schema:mpd:2011"' in text
        assert text.startswith("<?xml")


class TestSegmentTemplate:
    def test_defaults_valid(self):
        template = DashSegmentTemplate()
        assert template.segment_duration_s == 5.0

    def test_media_url_expansion(self):
        template = DashSegmentTemplate(start_number=1)
        assert template.media_url("V3", 0) == "V3_1.m4s"
        assert template.media_url("V3", 7) == "V3_8.m4s"

    def test_init_url(self):
        assert DashSegmentTemplate().init_url("A2") == "A2_init.mp4"

    def test_negative_index_rejected(self):
        with pytest.raises(ManifestError):
            DashSegmentTemplate().media_url("V1", -1)

    def test_validation(self):
        with pytest.raises(ManifestError):
            DashSegmentTemplate(duration=0)
        with pytest.raises(ManifestError):
            DashSegmentTemplate(media="no_number.m4s")
        with pytest.raises(ManifestError):
            DashSegmentTemplate(start_number=-1)

    def test_built_manifest_carries_template(self, content, dash_manifest):
        template = dash_manifest.video.segment_template
        assert template is not None
        assert template.segment_duration_s == content.chunk_duration_s

    def test_template_roundtrips_through_xml(self, dash_manifest):
        parsed = parse_mpd(write_mpd(dash_manifest))
        assert parsed.video.segment_template == dash_manifest.video.segment_template
        assert parsed.audio.segment_template == dash_manifest.audio.segment_template

    def test_bad_template_in_xml_rejected(self):
        text = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            'mediaPresentationDuration="PT10.000S"><Period>'
            '<AdaptationSet contentType="video">'
            '<SegmentTemplate media="x_$Number$.m4s" duration="abc"/>'
            '<Representation id="V1" bandwidth="1000"/>'
            "</AdaptationSet></Period></MPD>"
        )
        with pytest.raises(ManifestParseError):
            parse_mpd(text)


class TestParserErrors:
    def test_invalid_xml(self):
        with pytest.raises(ManifestParseError):
            parse_mpd("<not-closed")

    def test_wrong_root(self):
        with pytest.raises(ManifestParseError):
            parse_mpd("<foo/>")

    def test_missing_duration(self):
        text = '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011"><Period/></MPD>'
        with pytest.raises(ManifestParseError):
            parse_mpd(text)

    def test_missing_period(self):
        text = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            'mediaPresentationDuration="PT10.000S"/>'
        )
        with pytest.raises(ManifestParseError):
            parse_mpd(text)

    def test_representation_without_bandwidth(self):
        text = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            'mediaPresentationDuration="PT10.000S"><Period>'
            '<AdaptationSet contentType="video">'
            '<Representation id="V1"/>'
            "</AdaptationSet></Period></MPD>"
        )
        with pytest.raises(ManifestParseError):
            parse_mpd(text)

    def test_content_type_inferred_from_mime(self):
        text = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            'mediaPresentationDuration="PT10.000S"><Period>'
            '<AdaptationSet mimeType="video/mp4">'
            '<Representation id="V1" bandwidth="1000"/>'
            "</AdaptationSet></Period></MPD>"
        )
        parsed = parse_mpd(text)
        assert parsed.video.representations[0].rep_id == "V1"

    def test_uninferable_content_type_rejected(self):
        text = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            'mediaPresentationDuration="PT10.000S"><Period>'
            "<AdaptationSet>"
            '<Representation id="V1" bandwidth="1000"/>'
            "</AdaptationSet></Period></MPD>"
        )
        with pytest.raises(ManifestParseError):
            parse_mpd(text)
