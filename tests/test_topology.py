"""repro.topology + the cohort kernel + streaming aggregation.

The contracts under test are this PR's guarantees: a seeded fault
schedule replays the identical storm everywhere; the edge LRU cache is
deterministic; per-session endpoint health fails over in ring order
under a budget and never leaves a session with no endpoint; the
processor-sharing cohort kernel is byte-deterministic, conserves every
edge's byte ledger, and ends every session with a verdict (the
zero-aborted-sessions law) even when a whole edge goes dark mid
flash crowd; cohort QoE folds in O(1) memory with exact shard merges;
and the player's rung-ejection guard keeps a single-rung ladder alive
through a fully-tripped breaker.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import check_cohort
from repro.core.combinations import (
    Combination,
    CombinationSet,
    hsub_combinations,
)
from repro.core.player import RecommendedPlayer
from repro.errors import ExperimentError, PlayerError, TraceError
from repro.media.content import drama_show
from repro.net.resilience import (
    CircuitBreaker,
    EndpointHealth,
    FailoverPolicy,
    ResilienceModel,
    RetryPolicy,
)
from repro.qoe.aggregate import CohortAggregate, OnlineStats
from repro.sim.cohort import CohortConfig, CohortResult
from repro.topology import (
    CohortJob,
    EdgeCache,
    EdgeSpec,
    FaultDomainKind,
    FaultDomainSchedule,
    FaultWindow,
    TopologySpec,
)


@pytest.fixture(scope="module")
def content():
    return drama_show()


def small_job(**overrides) -> CohortJob:
    defaults = dict(
        topology=TopologySpec.uniform(3, capacity_kbps=25_000.0),
        n_sessions=24,
        arrival_burst_s=8.0,
        seed=0,
    )
    defaults.update(overrides)
    return CohortJob(**defaults)


def outage(domain="edge-1", start=60.0, end=90.0) -> FaultDomainSchedule:
    return FaultDomainSchedule(
        kinds=(),
        pinned=(
            FaultWindow(FaultDomainKind.EDGE_OUTAGE, domain, start, end),
        ),
    )


# -- topology specs ---------------------------------------------------------


class TestTopologySpec:
    def test_endpoint_order_is_deterministic_ring(self):
        topo = TopologySpec.uniform(4)
        order = topo.endpoint_order(seed=3, session_id=17)
        assert order == topo.endpoint_order(3, 17)
        assert sorted(order) == sorted(e.edge_id for e in topo.edges)
        # Ring order: each fallback is the next edge cyclically.
        ids = [e.edge_id for e in topo.edges]
        start = ids.index(order[0])
        assert list(order) == [ids[(start + i) % 4] for i in range(4)]

    def test_primary_spread_covers_every_edge(self):
        topo = TopologySpec.uniform(3)
        primaries = {
            topo.endpoint_order(0, sid)[0] for sid in range(60)
        }
        assert primaries == {"edge-1", "edge-2", "edge-3"}

    def test_validation(self):
        with pytest.raises(ExperimentError):
            TopologySpec(edges=())
        with pytest.raises(ExperimentError):
            TopologySpec(edges=(EdgeSpec("a"), EdgeSpec("a")))
        with pytest.raises(ExperimentError):
            EdgeSpec("a", capacity_kbps=0.0)
        with pytest.raises(ExperimentError):
            TopologySpec.uniform(0)
        with pytest.raises(ExperimentError):
            TopologySpec().edge("nope")


# -- fault schedules --------------------------------------------------------


class TestFaultDomainSchedule:
    def test_windows_are_deterministic(self):
        topo = TopologySpec.uniform(3)
        a = FaultDomainSchedule(seed=7).windows_for(topo)
        b = FaultDomainSchedule(seed=7).windows_for(topo)
        assert a == b
        assert a != FaultDomainSchedule(seed=8).windows_for(topo)

    def test_first_eighth_of_horizon_is_storm_free(self):
        topo = TopologySpec.uniform(4)
        schedule = FaultDomainSchedule(seed=1, windows_per_domain=3)
        for window in schedule.windows_for(topo):
            assert window.start_s >= schedule.horizon_s / 8.0

    def test_spec_round_trips(self):
        schedule = FaultDomainSchedule(
            kinds=(FaultDomainKind.EDGE_OUTAGE,),
            seed=5,
            probability=0.4,
            duration_s=33.0,
            pinned=(
                FaultWindow(
                    FaultDomainKind.EVICTION_STORM, "edge-2", 60.0, 90.0
                ),
            ),
        )
        assert FaultDomainSchedule.from_spec(schedule.spec()) == schedule

    def test_grammar_accepts_all_and_none_heads(self):
        assert FaultDomainSchedule.from_spec("all").kinds == tuple(
            FaultDomainKind
        )
        pinned_only = FaultDomainSchedule.from_spec(
            "none:pin=edge_outage@edge-1@10@20"
        )
        assert pinned_only.kinds == ()
        assert len(pinned_only.pinned) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate",
            "all:bogus=1",
            "all:p=notafloat",
            "none:pin=edge_outage@edge-1@10",  # missing END
            "none",  # no kinds and no pinned windows
            "all:p=1,p=2",  # duplicate option
        ],
    )
    def test_grammar_rejects_garbage(self, bad):
        with pytest.raises(ExperimentError):
            FaultDomainSchedule.from_spec(bad)

    def test_window_validation(self):
        with pytest.raises(ExperimentError):
            FaultWindow(FaultDomainKind.EDGE_OUTAGE, "e", 10.0, 10.0)
        with pytest.raises(ExperimentError):
            FaultWindow(
                FaultDomainKind.ORIGIN_BROWNOUT, "origin", 0.0, 1.0,
                error_probability=1.5,
            )


# -- the edge cache ---------------------------------------------------------


class TestEdgeCache:
    def test_lru_eviction_order(self):
        cache = EdgeCache(2)
        cache.admit(("V1", 0))
        cache.admit(("V1", 1))
        assert cache.lookup(("V1", 0))  # touch 0: 1 becomes LRU
        cache.admit(("V1", 2))  # evicts 1
        assert cache.lookup(("V1", 2))
        assert not cache.lookup(("V1", 1))
        assert cache.evictions == 1

    def test_flush_counts_everything(self):
        cache = EdgeCache(8)
        for i in range(5):
            cache.admit(("A1", i))
        assert cache.flush() == 5
        assert cache.evictions == 5
        assert len(cache) == 0

    def test_capacity_zero_disables(self):
        cache = EdgeCache(0)
        cache.admit(("V1", 0))
        assert not cache.lookup(("V1", 0))
        assert len(cache) == 0
        with pytest.raises(ValueError):
            EdgeCache(-1)


# -- endpoint health / failover ---------------------------------------------


class TestEndpointHealth:
    def test_fails_over_in_ring_order_after_threshold(self):
        health = EndpointHealth(
            ("a", "b", "c"), FailoverPolicy(endpoint_threshold=2)
        )
        assert health.current(0.0) == "a"
        health.record_failure("a", 0.0)
        assert health.current(0.1) == "a"  # one failure: not tripped yet
        health.record_failure("a", 0.2)
        assert health.current(0.3) == "b"
        assert health.failovers == 1
        assert health.hops[0][1:] == ("a", "b")

    def test_budget_caps_switching(self):
        health = EndpointHealth(
            ("a", "b"),
            FailoverPolicy(failover_budget=1, endpoint_threshold=1),
        )
        health.record_failure("a", 0.0)
        assert health.current(0.1) == "b"
        health.record_failure("b", 0.2)
        # Budget spent: stays on b even though its circuit is open.
        assert health.current(0.3) == "b"
        assert health.failovers == 1

    def test_all_open_returns_current_as_last_resort(self):
        health = EndpointHealth(
            ("a", "b"), FailoverPolicy(endpoint_threshold=1)
        )
        health.record_failure("a", 0.0)
        health.record_failure("b", 0.0)
        assert health.current(0.1) in ("a", "b")  # never nothing

    def test_validation(self):
        with pytest.raises(TraceError):
            EndpointHealth((), FailoverPolicy())
        with pytest.raises(TraceError):
            EndpointHealth(("a", "a"), FailoverPolicy())
        with pytest.raises(TraceError):
            FailoverPolicy(failover_budget=-1)
        with pytest.raises(TraceError):
            FailoverPolicy(endpoint_threshold=0)


# -- the cohort kernel ------------------------------------------------------


class TestCohortKernel:
    def test_identical_specs_identical_fingerprints(self):
        a = small_job().execute()
        b = small_job().execute()
        assert isinstance(a, CohortResult)
        assert a.fingerprint() == b.fingerprint()
        assert small_job(seed=1).execute().fingerprint() != a.fingerprint()

    def test_clean_adequately_provisioned_cohort_completes(self):
        result = small_job().execute()
        assert result.verdict_counts == {"completed": result.n_sessions}
        assert check_cohort(result) == []

    def test_every_session_always_has_a_verdict(self):
        # Starve the cohort: tiny capacity, so most sessions degrade —
        # but every one must end with an explicit reason, not an abort.
        result = small_job(
            topology=TopologySpec.uniform(2, capacity_kbps=300.0),
            n_sessions=10,
        ).execute()
        assert sum(result.verdict_counts.values()) == 10
        assert "no_verdict" not in result.verdict_counts
        for summary in result.summaries:
            assert summary.completed or summary.termination_reason

    def test_edge_outage_forces_failover_onto_ring_neighbor(self):
        clean = small_job().execute()
        stormy = small_job(faults=outage()).execute()
        assert (
            stormy.aggregate["failover_sessions"]
            > clean.aggregate["failover_sessions"]
        )
        # Sessions that failed over ended on a different edge.
        moved = [
            s for s in stormy.summaries if s.final_edge != s.primary_edge
        ]
        assert moved
        assert check_cohort(stormy) == []

    def test_ledger_conserves_bytes_per_edge(self):
        result = small_job(faults=outage()).execute()
        for ledger in result.edges.values():
            assert math.isclose(
                ledger["served_bits"],
                ledger["settled_bits"],
                rel_tol=1e-6,
                abs_tol=1e4,
            )
            assert math.isclose(
                ledger["settled_bits"],
                ledger["useful_bits"] + ledger["wasted_bits"],
                rel_tol=1e-6,
                abs_tol=1e4,
            )
        # Cross-check: edge-side totals equal session-side totals.
        edge_total = sum(
            led["useful_bits"] + led["wasted_bits"]
            for led in result.edges.values()
        )
        session_total = sum(
            s.bits_useful + s.bits_wasted for s in result.summaries
        )
        assert math.isclose(
            edge_total, session_total, rel_tol=1e-6, abs_tol=1e4
        )

    def test_eviction_storm_flushes_and_recovers(self):
        schedule = FaultDomainSchedule(
            kinds=(),
            pinned=(
                FaultWindow(
                    FaultDomainKind.EVICTION_STORM, "edge-1", 60.0, 61.0
                ),
            ),
        )
        stormy = small_job(faults=schedule).execute()
        clean = small_job().execute()
        storm_ev = sum(
            led["cache_evictions"] for led in stormy.edges.values()
        )
        clean_ev = sum(
            led["cache_evictions"] for led in clean.edges.values()
        )
        assert storm_ev > clean_ev
        assert stormy.verdict_counts.get("completed", 0) > 0

    def test_origin_brownout_degrades_but_never_aborts(self):
        schedule = FaultDomainSchedule(
            kinds=(),
            pinned=(
                FaultWindow(
                    FaultDomainKind.ORIGIN_BROWNOUT, "origin", 30.0, 90.0,
                    latency_factor=8.0, error_probability=0.6,
                ),
            ),
        )
        result = small_job(faults=schedule).execute()
        assert sum(result.verdict_counts.values()) == result.n_sessions
        assert "no_verdict" not in result.verdict_counts
        assert check_cohort(result) == []

    def test_keep_summaries_false_drops_them_but_not_the_aggregate(self):
        kept = small_job().execute()
        dropped = small_job(keep_summaries=False).execute()
        assert dropped.summaries == ()
        assert dropped.aggregate == kept.aggregate
        assert dropped.verdict_counts == kept.verdict_counts

    def test_config_validation(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            CohortConfig(n_sessions=0)
        with pytest.raises(SimulationError):
            CohortConfig(arrival_burst_s=-1.0)
        with pytest.raises(SimulationError):
            CohortConfig(safety_factor=0.0)

    def test_job_key_is_stable_and_fault_sensitive(self):
        assert small_job().key() == small_job().key()
        assert small_job().key() != small_job(faults=outage()).key()
        assert small_job().key() != small_job(seed=9).key()


class TestFlashCrowdAcceptance:
    """The PR's headline scenario, scaled to the acceptance bar."""

    def test_1000_session_flash_crowd_with_midrun_outage(self):
        job = CohortJob(
            topology=TopologySpec.uniform(4, capacity_kbps=150_000.0),
            faults=outage(domain="edge-1", start=90.0, end=130.0),
            n_sessions=1000,
            arrival_burst_s=60.0,
            seed=0,
        )
        result = job.execute()
        # Zero aborted sessions: every session completed or carries an
        # explicit degraded verdict.
        assert sum(result.verdict_counts.values()) == 1000
        assert "no_verdict" not in result.verdict_counts
        # The outage is survivable: the overwhelming majority complete
        # by failing over across the ring.
        assert result.completed_sessions >= 950
        assert result.aggregate["failover_sessions"] > 0
        # Cohort invariants (byte ledger, fair share, verdicts) hold.
        assert check_cohort(result) == []
        # Aggregation stayed streaming: the aggregate knows exactly as
        # many sessions as ran.
        assert result.aggregate["sessions"] == 1000


# -- streaming aggregation --------------------------------------------------


class TestOnlineStats:
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=60,
        ),
        split=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_of_shards_equals_single_pass(self, values, split):
        split = min(split, len(values))
        whole = OnlineStats()
        for v in values:
            whole.add(v)
        left, right = OnlineStats(), OnlineStats()
        for v in values[:split]:
            left.add(v)
        for v in values[split:]:
            right.add(v)
        left.merge(right)
        assert left.n == whole.n
        assert math.isclose(left.mean, whole.mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(
            left.variance(), whole.variance(), rel_tol=1e-6, abs_tol=1e-6
        )
        assert left.min == whole.min and left.max == whole.max

    def test_matches_closed_form(self):
        stats = OnlineStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.add(v)
        assert stats.mean == 2.5
        assert math.isclose(stats.variance(), 1.25)
        assert stats.summary()["min"] == 1.0

    def test_rejects_non_finite(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            OnlineStats().add(float("nan"))

    def test_empty_is_merge_identity(self):
        stats = OnlineStats()
        stats.add(5.0)
        stats.merge(OnlineStats())
        assert stats.n == 1 and stats.mean == 5.0
        assert OnlineStats().summary()["n"] == 0


class TestCohortAggregate:
    def test_fold_equals_shard_merge(self):
        result = small_job(faults=outage()).execute()
        whole = CohortAggregate()
        shard_a, shard_b = CohortAggregate(), CohortAggregate()
        for i, summary in enumerate(result.summaries):
            whole.add_session(summary)
            (shard_a if i % 2 == 0 else shard_b).add_session(summary)
        shard_a.merge(shard_b)
        merged, folded = shard_a.summary(), whole.summary()
        assert merged["sessions"] == folded["sessions"]
        assert merged["verdicts"] == folded["verdicts"]
        for metric, stats in folded.items():
            if not isinstance(stats, dict) or "mean" not in stats:
                continue
            for field in ("n", "mean", "stddev", "min", "max"):
                # Chan's parallel merge is algebraically equal to the
                # sequential fold but not bit-identical.
                assert math.isclose(
                    merged[metric][field], stats[field],
                    rel_tol=1e-9, abs_tol=1e-9,
                ), (metric, field)
        # The sequential re-fold IS bit-identical to what the kernel
        # streamed online (same order, same arithmetic).
        assert folded == result.aggregate

    def test_state_is_fixed_size(self):
        # O(1) memory: the aggregate's state is a fixed set of slots
        # and per-metric OnlineStats, independent of session count.
        agg = CohortAggregate()
        assert not hasattr(agg, "__dict__")  # __slots__: nothing grows
        result = small_job().execute()
        for summary in result.summaries:
            agg.add_session(summary)
        assert all(
            isinstance(stats, OnlineStats) for stats in agg.stats.values()
        )
        assert len(agg.stats) == 8  # fixed metric set, not per-session


# -- satellite: rung-ejection guard -----------------------------------------


class _BreakerCtx:
    """Minimal ctx for _allowed_indices/_degrade: a clock + no budget."""

    def __init__(self, now=0.0):
        self.now = now
        self.retry_policy = None

    def retry_budget_remaining(self):
        return None


class TestRungEjectionGuard:
    """The emergency lowest rung must survive a fully-tripped ladder."""

    def _single_rung(self, content):
        return CombinationSet(
            [Combination(video=content.video[0], audio=content.audio[0])]
        )

    def test_single_rung_ladder_fully_tripped_still_selects_rung_0(
        self, content
    ):
        combos = self._single_rung(content)
        breaker = CircuitBreaker(threshold=1, cooldown_s=600.0)
        player = RecommendedPlayer(combos, circuit_breaker=breaker)
        breaker.record_failure(combos[0].video.track_id, now=0.0)
        breaker.record_failure(combos[0].audio.track_id, now=0.0)
        ctx = _BreakerCtx(now=1.0)
        assert breaker.is_open(combos[0].video.track_id, ctx.now)
        # Every combination touches an open circuit, yet the guard
        # keeps the cheapest rung available and selection never raises.
        assert player._allowed_indices(ctx) == [0]
        assert player._degrade(0, ctx) == 0

    def test_empty_combination_sequence_is_rejected_up_front(self):
        with pytest.raises(PlayerError, match="at least one combination"):
            RecommendedPlayer([])

    def test_degraded_but_alive_verdict_under_certain_failure(self, content):
        """Regression pin: a session whose every request fails must end
        with an explicit degraded verdict — never an exception — and
        its selections must stay inside the (still-allowed) ladder."""
        from repro.net.link import shared
        from repro.net.traces import constant
        from repro.sim.session import Session, SessionConfig

        player = RecommendedPlayer(hsub_combinations(content))
        config = SessionConfig(
            failure_model=ResilienceModel(1.0, seed=3),
            retry_policy=RetryPolicy(retry_budget=6),
        )
        result = Session(
            content, player, shared(constant(900.0)), config
        ).run()
        assert not result.completed
        assert result.termination_reason in (
            "retry_budget_exhausted",
            "attempts_exhausted",
        )
        assert result.ended_at_s is not None
