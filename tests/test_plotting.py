"""ASCII chart rendering."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentReport
from repro.experiments.plotting import ascii_chart, render_report_charts


class TestAsciiChart:
    def test_empty_series(self):
        assert "(no data)" in ascii_chart([], label="x")

    def test_label_included(self):
        chart = ascii_chart([(0, 1), (1, 2)], label="estimate")
        assert chart.splitlines()[0] == "estimate"

    def test_min_max_labels(self):
        chart = ascii_chart([(0, 100.0), (10, 900.0)])
        assert "900" in chart
        assert "100" in chart

    def test_time_axis_labels(self):
        chart = ascii_chart([(0, 1.0), (42, 2.0)])
        assert "0s" in chart and "42s" in chart

    def test_row_count(self):
        chart = ascii_chart([(0, 1.0), (1, 2.0)], height=7, label="x")
        body = [line for line in chart.splitlines() if "|" in line]
        assert len(body) == 7

    def test_column_width(self):
        chart = ascii_chart([(0, 1.0), (1, 2.0)], width=20)
        for line in chart.splitlines():
            if line.endswith("|") and "|" in line[:-1]:
                start = line.index("|")
                assert len(line) - start - 2 == 20

    def test_constant_series_renders(self):
        chart = ascii_chart([(t, 500.0) for t in range(10)])
        assert chart.count("*") > 0

    def test_monotone_series_is_monotone_in_rows(self):
        points = [(float(t), float(t)) for t in range(64)]
        chart = ascii_chart(points, width=64, height=8)
        rows = [line for line in chart.splitlines() if line.endswith("|")]
        # Star columns must move left-to-right downward through rows
        # reversed (rising series): first star in each row (bottom-up)
        # should be at increasing columns top-down.
        star_columns = []
        for row in rows:
            interior = row[row.index("|") + 1 : -1]
            if "*" in interior:
                star_columns.append(interior.index("*"))
        assert star_columns == sorted(star_columns, reverse=True)

    def test_size_validation(self):
        with pytest.raises(ExperimentError):
            ascii_chart([(0, 1)], width=4)
        with pytest.raises(ExperimentError):
            ascii_chart([(0, 1)], height=2)


class TestRenderReportCharts:
    def test_no_series(self):
        report = ExperimentReport(experiment_id="x", title="t")
        assert render_report_charts(report) == "(no series to plot)"

    def test_all_series_rendered(self):
        report = ExperimentReport(experiment_id="x", title="t")
        report.series["a"] = [(0, 1.0), (1, 2.0)]
        report.series["b"] = [(0, 5.0), (1, 6.0)]
        text = render_report_charts(report)
        assert "a" in text and "b" in text
        assert text.count("+--") == 2
