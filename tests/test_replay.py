"""Record -> replay: event logs rebuild sessions byte-identically."""

import json
import os

import pytest

from repro.net.failures import FailureModel
from repro.net.link import shared
from repro.net.resilience import ResilienceModel, RetryPolicy
from repro.net.traces import constant, square_wave
from repro.qoe.metrics import DEFAULT_WEIGHTS, QoEWeights, compute_qoe
from repro.qoe.rescore import rescore_log
from repro.replay import (
    EVENT_SCHEMA_BASE_VERSION,
    EVENT_SCHEMA_VERSION,
    EventRecorder,
    ReplayError,
    record_path,
    replay_session,
    scan_events,
)
from repro.runner.jobs import PlayerSpec, SimulationJob, TraceSpec
from repro.sim.session import Session, SessionConfig

PLAYERS = ["shaka", "dashjs", "exoplayer-dash", "exoplayer-hls", "recommended"]


def record_run(content, tmp_path, player_name="shaka", name="run", **config_kw):
    """Simulate one recorded session; returns (live result, log path)."""
    path = str(tmp_path / f"{name}.events.jsonl")
    player = PlayerSpec(player_name).build(content)
    network = shared(square_wave(600.0, 2500.0, 15.0), rtt_s=0.05)
    recorder = EventRecorder(path)
    config = SessionConfig(observer=recorder, **config_kw)
    result = Session(content, player, network, config).run()
    assert recorder.closed  # the session closes its observer
    return result, path


class TestRoundTrip:
    @pytest.mark.parametrize("player_name", PLAYERS)
    def test_summary_and_qoe_byte_identical(self, content, tmp_path, player_name):
        result, path = record_run(content, tmp_path, player_name)
        replayed = replay_session(path)
        assert replayed.intact and replayed.has_verdict
        assert replayed.result.summary() == result.summary()
        live_qoe = compute_qoe(result, content, DEFAULT_WEIGHTS)
        assert replayed.qoe().as_dict() == live_qoe.as_dict()

    def test_timelines_match(self, content, tmp_path):
        result, path = record_run(content, tmp_path)
        replayed = replay_session(path)
        assert len(replayed.result.downloads) == len(result.downloads)
        for live, rep in zip(result.downloads, replayed.result.downloads):
            assert rep == live  # dataclass equality: every float identical
        assert replayed.result.buffer_timeline == result.buffer_timeline
        assert replayed.result.estimate_timeline == result.estimate_timeline
        assert replayed.result.stalls == result.stalls

    def test_failures_and_retries_round_trip(self, content, tmp_path):
        result, path = record_run(
            content,
            tmp_path,
            failure_model=ResilienceModel(0.25, seed=7),
            retry_policy=RetryPolicy(),
        )
        assert result.failures  # the scenario must actually exercise failures
        replayed = replay_session(path)
        assert replayed.result.failures == result.failures
        assert replayed.result.summary() == result.summary()

    def test_live_skips_round_trip(self, content, tmp_path):
        result, path = record_run(
            content,
            tmp_path,
            failure_model=ResilienceModel(0.35, seed=3),
            retry_policy=RetryPolicy(max_attempts=2),
            live_offset_s=4.0,
        )
        replayed = replay_session(path)
        assert replayed.result.skips == result.skips
        assert replayed.result.summary() == result.summary()

    def test_legacy_failure_model_round_trip(self, content, tmp_path):
        result, path = record_run(
            content, tmp_path, failure_model=FailureModel(0.15, seed=5)
        )
        assert result.failures
        replayed = replay_session(path)
        assert replayed.result.summary() == result.summary()

    def test_rescore_with_other_weights(self, content, tmp_path):
        result, path = record_run(content, tmp_path)
        weights = QoEWeights(rebuffer_per_s=50.0)
        live = compute_qoe(result, content, weights)
        assert rescore_log(path, weights).as_dict() == live.as_dict()


class TestTornLogs:
    def test_torn_log_replays_prefix(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        whole = scan_events(path)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 41)  # tear mid final line
        replayed = replay_session(path)
        assert replayed.damage == "truncated"
        assert not replayed.has_verdict
        assert len(replayed.events) == len(whole.events) - 1
        # The torn prefix still yields a well-formed partial result.
        assert replayed.result.summary()
        assert replayed.qoe().as_dict()

    def test_every_tear_point_replays_cleanly(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        with open(path, "rb") as f:
            data = f.read()
        header_len = data.index(b"\n") + 1
        for cut in range(header_len + 1, min(len(data), header_len + 400), 13):
            torn = str(tmp_path / "torn.jsonl")
            with open(torn, "wb") as f:
                f.write(data[:cut])
            replayed = replay_session(torn)  # must never raise
            assert replayed.result.summary()

    def test_corrupt_mid_log_stops_at_damage(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        with open(path, "r+b") as f:
            data = f.read()
            # Flip a byte inside the 5th line's payload.
            offset = 0
            for _ in range(4):
                offset = data.index(b"\n", offset) + 1
            f.seek(offset + 40)
            f.write(b"~")
        replayed = replay_session(path)
        assert replayed.damage == "corrupt"
        assert replayed.damage_line == 5
        with pytest.raises(ReplayError):
            replay_session(path, strict=True)

    def test_strict_tolerates_truncation(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 7)
        replayed = replay_session(path, strict=True)  # tears are contract
        assert replayed.damage == "truncated"


class TestSchema:
    def test_header_carries_schema_and_content(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        meta = scan_events(path).events[0]
        assert meta["k"] == "session_meta"
        # Writers stamp the lowest version their fields need (schema 2
        # is only for topology-bearing headers), never past the reader.
        assert meta["schema"] == EVENT_SCHEMA_BASE_VERSION
        assert meta["schema"] <= EVENT_SCHEMA_VERSION
        ladder = meta["content"]["video"]
        assert [t["id"] for t in ladder] == [t.track_id for t in content.video]

    def test_newer_schema_refused(self, content, tmp_path):
        _, path = record_run(content, tmp_path)
        scan = scan_events(path)
        scan.events[0]["schema"] = EVENT_SCHEMA_VERSION + 1
        from repro.framing import frame_line
        from repro.replay.events import encode_event

        with open(path, "wb") as f:
            for event in scan.events:
                f.write(frame_line(encode_event(event)))
        with pytest.raises(ReplayError, match="newer than this reader"):
            replay_session(path)

    def test_unknown_event_kinds_ignored(self, content, tmp_path):
        result, path = record_run(content, tmp_path)
        from repro.framing import frame_line
        from repro.replay.events import encode_event

        scan = scan_events(path)
        with open(path, "wb") as f:
            for i, event in enumerate(scan.events):
                f.write(frame_line(encode_event(event)))
                if i == 3:
                    f.write(
                        frame_line(
                            encode_event({"k": "future_kind", "seq": -1, "t": 0.0})
                        )
                    )
        assert replay_session(path).result.summary() == result.summary()

    def test_missing_header_refused(self, tmp_path):
        from repro.framing import frame_line
        from repro.replay.events import encode_event

        path = str(tmp_path / "headless.jsonl")
        with open(path, "wb") as f:
            f.write(frame_line(encode_event({"k": "estimate", "t": 0.0, "kbps": 1})))
        with pytest.raises(ReplayError, match="session_meta"):
            replay_session(path)

    def test_topology_meta_promotes_to_schema_2(self, content, tmp_path):
        from repro.replay import TOPOLOGY_META_FIELDS, schema_for_meta

        path = str(tmp_path / "topo.events.jsonl")
        recorder = EventRecorder(
            path, extra_meta={"edges": ["edge-1", "edge-2"]}
        )
        player = PlayerSpec("shaka").build(content)
        network = shared(constant(2000.0))
        Session(
            content, player, network, SessionConfig(observer=recorder)
        ).run()
        meta = scan_events(path).events[0]
        assert meta["schema"] == 2
        assert meta["edges"] == ["edge-1", "edge-2"]
        # And the replayer accepts the topology-bearing header.
        assert replay_session(path).result.completed
        # The stamping rule itself: any topology field promotes.
        assert schema_for_meta({}) == EVENT_SCHEMA_BASE_VERSION
        for name in TOPOLOGY_META_FIELDS:
            assert schema_for_meta({name: 1}) == 2

    def test_v1_log_replays_unchanged(self, content, tmp_path):
        # Back-compat: a pre-topology (schema 1) log must replay to the
        # identical session under the schema-2 reader.
        result, path = record_run(content, tmp_path)
        meta = scan_events(path).events[0]
        assert meta["schema"] == EVENT_SCHEMA_BASE_VERSION
        for name in ("edge_id", "edges", "failover_hops"):
            assert name not in meta
        assert replay_session(path).result.summary() == result.summary()

    def test_payload_is_strict_json(self, content, tmp_path):
        # Wait-forever decisions carry until=inf; it must be encoded as
        # a string, keeping every payload parseable by a strict reader.
        _, path = record_run(content, tmp_path)
        from repro.framing import scan_line_file

        for payload in scan_line_file(path).payloads:
            json.loads(payload.decode("utf-8"))  # must not need NaN/Infinity


class TestRunnerRecording:
    def test_record_dir_writes_keyed_logs(self, tmp_path):
        from repro.runner.engine import run_jobs

        record_dir = str(tmp_path / "rec")
        jobs = [
            SimulationJob(
                player=PlayerSpec("shaka"), trace=TraceSpec.constant(900.0)
            ),
            SimulationJob(
                player=PlayerSpec("dashjs"), trace=TraceSpec.constant(700.0)
            ),
        ]
        outcomes = run_jobs(jobs, record_dir=record_dir)
        for job, outcome in zip(jobs, outcomes):
            path = record_path(record_dir, job.key())
            assert os.path.exists(path)
            replayed = replay_session(path)
            assert replayed.meta["key"] == job.key()
            assert replayed.result.summary() == outcome.result.summary()
            # The embedded spec is re-runnable.
            assert SimulationJob.from_spec(replayed.job_spec).key() == job.key()

    def test_intact_log_replays_instead_of_resimulating(self, tmp_path):
        from repro.runner.engine import run_jobs

        record_dir = str(tmp_path / "rec")
        jobs = [
            SimulationJob(player=PlayerSpec("shaka"), trace=TraceSpec.constant(900.0))
        ]
        first = run_jobs(jobs, record_dir=record_dir)
        second = run_jobs(jobs, record_dir=record_dir)
        assert not first[0].replayed
        assert second[0].replayed and second[0].cached
        assert second[0].result.summary() == first[0].result.summary()

    def test_torn_log_falls_back_to_simulation(self, tmp_path):
        from repro.runner.engine import run_jobs

        record_dir = str(tmp_path / "rec")
        jobs = [
            SimulationJob(player=PlayerSpec("shaka"), trace=TraceSpec.constant(900.0))
        ]
        run_jobs(jobs, record_dir=record_dir)
        path = record_path(record_dir, jobs[0].key())
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 10)
        outcome = run_jobs(jobs, record_dir=record_dir)[0]
        assert not outcome.replayed  # torn log is not trusted as a cache
        assert replay_session(path).has_verdict  # ...and was re-recorded whole

    def test_pool_workers_record_too(self, tmp_path):
        from repro.runner.engine import run_jobs

        record_dir = str(tmp_path / "rec")
        jobs = [
            SimulationJob(player=PlayerSpec("shaka"), trace=TraceSpec.constant(900.0)),
            SimulationJob(player=PlayerSpec("dashjs"), trace=TraceSpec.constant(700.0)),
        ]
        outcomes = run_jobs(jobs, workers=2, record_dir=record_dir)
        for job, outcome in zip(jobs, outcomes):
            replayed = replay_session(record_path(record_dir, job.key()))
            assert replayed.result.summary() == outcome.result.summary()

    def test_grid_runner_reports_provenance(self, tmp_path):
        from repro.runner.engine import GridRunner

        record_dir = str(tmp_path / "rec")
        runner = GridRunner(record_dir=record_dir)
        jobs = [
            SimulationJob(player=PlayerSpec("shaka"), trace=TraceSpec.constant(900.0))
        ]
        runner.run(jobs)
        runner.run(jobs)
        params = runner.params()
        assert params["record_dir"] == record_dir
        assert params["replayed_from_log"] == 1

    def test_spec_round_trip_through_json(self):
        job = SimulationJob(
            player=PlayerSpec("exoplayer-hls", audio_order=("A3", "A1")),
            trace=TraceSpec.pairs([(10.0, 600.0), (5.0, 1800.0)]),
            retry_policy=RetryPolicy(max_attempts=3),
            rtt_s=0.08,
            live_offset_s=4.0,
            seed=9,
        )
        spec = json.loads(json.dumps(job.spec_dict()))
        assert SimulationJob.from_spec(spec).key() == job.key()


class TestRecorder:
    def test_truncates_on_open(self, content, tmp_path):
        _, path = record_run(content, tmp_path, name="same")
        first_size = os.path.getsize(path)
        _, path2 = record_run(content, tmp_path, name="same")
        assert path2 == path
        assert os.path.getsize(path) == first_size  # rewritten, not appended
        assert replay_session(path).intact

    def test_emit_after_close_raises(self, tmp_path):
        recorder = EventRecorder(str(tmp_path / "log.jsonl"))
        recorder.close()
        with pytest.raises(ValueError):
            recorder.emit("estimate", {"t": 0.0, "kbps": 1.0})

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "log.jsonl")
        with EventRecorder(path) as recorder:
            recorder.emit("session_meta", {"content": {}})
        assert os.path.exists(path)
