"""The AST determinism lint (DET-*) and the repo-wide invariant."""

import os

from repro.analysis import AnalyzerConfig, Severity, analyze_files, analyze_text


def rules(findings):
    return {f.rule for f in findings}


def lint_py(source):
    return analyze_text("mod.py", source)


class TestUnseededRandom:
    def test_module_level_random_call(self):
        findings = lint_py("import random\nx = random.random()\n")
        f = [x for x in findings if x.rule == "DET-UNSEEDED-RANDOM"]
        assert f and f[0].severity is Severity.ERROR
        assert f[0].line == 2

    def test_aliased_module(self):
        findings = lint_py("import random as rnd\nx = rnd.choice([1, 2])\n")
        assert "DET-UNSEEDED-RANDOM" in rules(findings)

    def test_from_import(self):
        findings = lint_py("from random import shuffle\nshuffle([1])\n")
        assert "DET-UNSEEDED-RANDOM" in rules(findings)

    def test_seeded_rng_is_fine(self):
        findings = lint_py("import random\nrng = random.Random(42)\nrng.random()\n")
        assert "DET-UNSEEDED-RANDOM" not in rules(findings)

    def test_unseeded_random_constructor(self):
        findings = lint_py("import random\nrng = random.Random()\n")
        assert "DET-UNSEEDED-RANDOM" in rules(findings)

    def test_suppression_comment(self):
        findings = lint_py(
            "import random\n"
            "x = random.random()  # lint: allow[DET-UNSEEDED-RANDOM]\n"
        )
        assert "DET-UNSEEDED-RANDOM" not in rules(findings)

    def test_legacy_suppression_comment_is_inert(self):
        findings = lint_py(
            "import random\nx = random.random()  # det: allow\n"
        )
        assert "DET-UNSEEDED-RANDOM" in rules(findings)
        assert "LINT-DEPRECATED-SUPPRESS" in rules(findings)


class TestWallclock:
    def test_time_time(self):
        findings = lint_py("import time\nt = time.time()\n")
        assert "DET-WALLCLOCK" in rules(findings)

    def test_perf_counter_allowed(self):
        findings = lint_py("import time\nt = time.perf_counter()\n")
        assert "DET-WALLCLOCK" not in rules(findings)

    def test_datetime_now(self):
        findings = lint_py(
            "from datetime import datetime\nt = datetime.now()\n"
        )
        assert "DET-WALLCLOCK" in rules(findings)

    def test_datetime_module_form(self):
        findings = lint_py("import datetime\nt = datetime.datetime.utcnow()\n")
        assert "DET-WALLCLOCK" in rules(findings)

    def test_from_import_time(self):
        findings = lint_py("from time import time\nt = time()\n")
        assert "DET-WALLCLOCK" in rules(findings)


class TestSetOrder:
    def test_for_over_set_literal(self):
        findings = lint_py("for x in {1, 2, 3}:\n    print(x)\n")
        f = [x for x in findings if x.rule == "DET-SET-ORDER"]
        assert f and f[0].severity is Severity.WARNING

    def test_list_of_set(self):
        findings = lint_py("xs = list(set([3, 1, 2]))\n")
        assert "DET-SET-ORDER" in rules(findings)

    def test_sorted_set_is_fine(self):
        findings = lint_py("xs = sorted(set([3, 1, 2]))\n")
        assert "DET-SET-ORDER" not in rules(findings)

    def test_max_with_key_over_set(self):
        findings = lint_py("xs = [1, 1, 2]\nm = max(set(xs), key=xs.count)\n")
        assert "DET-SET-ORDER" in rules(findings)

    def test_max_without_key_is_fine(self):
        # max of a set without a key is the plain maximum: order-free.
        findings = lint_py("m = max({3, 1, 2})\n")
        assert "DET-SET-ORDER" not in rules(findings)

    def test_membership_test_is_fine(self):
        findings = lint_py("ok = 3 in {1, 2, 3}\n")
        assert "DET-SET-ORDER" not in rules(findings)

    def test_join_over_set(self):
        findings = lint_py("s = ','.join({'a', 'b'})\n")
        assert "DET-SET-ORDER" in rules(findings)


class TestRepoIsDeterministic:
    def test_src_repro_lints_clean(self):
        """The simulator's own source passes its determinism lint."""
        root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        files = {}
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    with open(path, "r", encoding="utf-8") as fh:
                        files[os.path.relpath(path, root)] = fh.read()
        assert len(files) > 50  # sanity: we really walked the tree
        config = AnalyzerConfig(
            selected=frozenset(
                {"DET-UNSEEDED-RANDOM", "DET-WALLCLOCK", "DET-SET-ORDER"}
            )
        )
        findings = analyze_files(files, config)
        assert findings == [], "\n".join(str(f) for f in findings)
